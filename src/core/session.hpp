// Many-client session front-end (DESIGN.md §8).
//
// The paper's model binds one application thread to one user_thread; the
// session layer decouples them so M concurrent clients share the N fixed
// pipelines:
//
//   tlstm::core::runtime rt(cfg);
//   auto s = rt.open_session();                 // thread-safe handle
//   auto t = s.submit({task1, task2});          // round-robin routed
//   auto u = s.submit_keyed(key, {task3});      // key-affinity routed
//   auto v = s.submit_batch(many_txs);          // one inbox hop, many txs
//   t.then([] { /* runs on the driver */ });    // async completion
//   u.wait(); for (auto& w : v) w.wait();       // parked per-ticket waits
//
// Each pipeline owns a bounded MPSC inbox drained by a dedicated driver
// thread (the pipeline's single submitter, preserving the one-submitter
// invariant of user_thread). An inbox cell carries either one transaction
// or a whole batch (§8.5), so bursty clients pay one push/pop/wake per
// batch instead of per transaction. Full inboxes backpressure clients by
// parking them on the inbox gate. Each submission returns a ticket; the
// driver retires tickets in commit-serial order once the pipeline's commit
// frontier passes them, running any `then()` callbacks and waking parked
// `wait()` callers. Ticket state is self-contained (wait parameters are
// snapshotted by value), so late `wait()`/`done()` calls after the runtime
// stopped never touch freed runtime memory.
//
// Domain note: sessions live in wall-clock land. The pipelines' virtual
// clocks keep running underneath (drivers are the submitting user-threads
// of §5), but ticket completion uses unstamped frontier loads — a session
// client has no worker_clock to join.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "core/task.hpp"
#include "core/thread_state.hpp"
#include "sched/inbox.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace tlstm::core {

class runtime;
class session_front;
class topology_controller;

/// The session key-affinity routing hash: key k routes to pipeline
/// `session_route_hash(k) % active_pipelines`. Two rounds of a folded
/// 128-bit multiply (wyhash-style mum): the previous splitmix64 finalizer
/// mixed well on random keys but left residue classes of adversarial/
/// strided key sets clustered modulo small pipeline counts (ROADMAP item
/// c); folding high^low of a wide product avalanches every input bit into
/// every output bit, so `% pipelines` sees an unbiased word for structured
/// keys too. Public so offline tooling (the trace/journal checker in
/// tests/support/tracefile.hpp and scripts/check_journal.py) can reproduce
/// the placement exactly — scripts/check_journal.py mirrors these exact
/// constants and must change in lockstep.
constexpr std::uint64_t session_route_hash(std::uint64_t key) noexcept {
  using u128 = unsigned __int128;
  u128 m = static_cast<u128>(key ^ 0x9e3779b97f4a7c15ull) * 0xe7037ed1a0b428dbull;
  const std::uint64_t x =
      static_cast<std::uint64_t>(m) ^ static_cast<std::uint64_t>(m >> 64);
  m = static_cast<u128>(x ^ 0x8ebc6af09c88c6e3ull) * 0x2d358dccaa6c78a5ull;
  return static_cast<std::uint64_t>(m) ^ static_cast<std::uint64_t>(m >> 64);
}

/// Wall-clock stamps of one submission's life cycle (config.capture_latency,
/// DESIGN.md §9). steady_clock nanoseconds; a field is 0 until its capture
/// point is reached (all four stay 0 with capture off). The three phases the
/// tail-latency harness reports are the deltas submit→install (inbox queue +
/// driver drain), install→commit (pipeline execution up to the driver
/// observing the commit frontier) and commit→callback (driver completion
/// phase: callbacks run, completion edge published).
struct ticket_latency {
  std::uint64_t submit_ns = 0;    ///< client enqueued the submission
  std::uint64_t install_ns = 0;   ///< driver installed it into its pipeline
  std::uint64_t commit_ns = 0;    ///< driver observed the frontier pass it
  std::uint64_t callback_ns = 0;  ///< callbacks done, completion published
  bool complete() const noexcept { return callback_ns != 0; }
};

namespace detail {
/// Shared completion state of one session submission. Entirely
/// self-contained: the driver publishes the completion edge here (flag +
/// gate owned by this object, wait parameters copied in at enqueue), so a
/// ticket outliving the runtime stays safe to query.
struct ticket_state {
  /// Serial of the transaction's commit-task; 0 until the driver installs
  /// the transaction. Diagnostic — completion is the `completed` flag.
  std::atomic<std::uint64_t> commit_serial{0};
  /// The completion edge: set by the driver after the commit frontier
  /// passed `commit_serial` and every registered callback ran.
  std::atomic<bool> completed{false};
  /// Parked wait() callers sleep here; the driver wakes it at completion.
  sched::wait_gate gate;
  /// Wait policy snapshotted by value at enqueue — never a pointer into
  /// the (possibly already destroyed) runtime config.
  sched::wait_params waits{};

  /// Callback registry. `completing` flips under the mutex when the driver
  /// claims the list; a then() racing the completion runs its callback
  /// inline in the registering thread (the edge has already passed).
  std::mutex cb_mu;
  bool completing = false;
  std::vector<std::function<void()>> callbacks;
  /// First exception thrown by a driver-run callback; rethrown by every
  /// subsequent wait() on this ticket (written before the `completed`
  /// release-store, read after the acquire-load — no lock needed).
  std::exception_ptr callback_error;

  /// Latency capture points (config.capture_latency, DESIGN.md §9).
  /// Relaxed atomics: the client writes submit_ns before the inbox push,
  /// the driver writes the rest; readers racing the driver may see a
  /// partially stamped record (fields are 0 until reached), but everything
  /// is fully published once `completed` is observed — the stores precede
  /// the completed release-store.
  std::atomic<std::uint64_t> t_submit_ns{0};
  std::atomic<std::uint64_t> t_install_ns{0};
  std::atomic<std::uint64_t> t_commit_ns{0};
  std::atomic<std::uint64_t> t_callback_ns{0};

  /// Actual placement (DESIGN.md §11): the pipeline this submission landed
  /// on and the topology epoch its route was decided under. Stamped by the
  /// enqueueing client immediately before the successful inbox push (a
  /// bounced reroute re-stamps), so harnesses dump real placements into the
  /// journal instead of recomputing hash%width — which would be wrong
  /// across resizes.
  std::atomic<std::uint32_t> pipe{0};
  std::atomic<std::uint64_t> route_epoch{0};
};

/// One transaction riding in an inbox cell.
struct sub_tx {
  std::vector<task_fn> tasks;
  std::shared_ptr<ticket_state> tk;
  /// Declared write-free (session::submit_read*): the driver may serve it
  /// inline at the committed frontier (DESIGN.md §10) instead of
  /// installing tasks.
  bool read_only = false;
};
}  // namespace detail

/// Completion handle for one session submission. Copyable; wait()/done()/
/// then() may be called from any thread, any number of times — including
/// after the owning runtime stopped (runtime::stop() completes every ticket
/// first, so waiting before shutdown always terminates and late calls read
/// only the ticket's own state).
class ticket {
 public:
  ticket() = default;

  /// Blocks (bounded spin, then parked on the ticket's own gate) until the
  /// driver retired the submission — i.e. the transaction committed and its
  /// callbacks ran. Rethrows the first callback exception, if any.
  void wait();
  /// Non-blocking completion probe.
  bool done() const noexcept;
  /// Registers a completion callback, executed by the pipeline's driver
  /// (never by a committing worker) when the commit frontier passes this
  /// ticket's serial. May be called repeatedly — callbacks run in
  /// registration order before any wait() on this ticket returns. If the
  /// ticket already completed, the callback runs inline in the calling
  /// thread (its exceptions then propagate to the caller directly).
  ///
  /// Callbacks run INLINE ON THE DRIVER and must not block: never wait()
  /// on another ticket and never submit against a possibly-full inbox from
  /// inside one — the driver is the only consumer that could drain the
  /// condition, so a blocking callback deadlocks its whole pipeline.
  /// Intended uses are bookkeeping, notification, and handing follow-up
  /// work to another executor.
  void then(std::function<void()> fn);
  bool valid() const noexcept { return st_ != nullptr; }

  /// Commit serial assigned by the driver at install; 0 until installed (or
  /// on an empty ticket). Diagnostic — pair with the pipeline's commit
  /// journal to match a submission to its commit_record. A read-only
  /// submission served by the fast path (DESIGN.md §10) never installs:
  /// its serial stays 0 and no journal record exists — a fallback read
  /// gets a real serial like any other transaction.
  std::uint64_t commit_serial() const noexcept {
    return st_ == nullptr
               ? 0
               : st_->commit_serial.load(std::memory_order_acquire);
  }
  /// Snapshot of the latency capture points (config.capture_latency). All
  /// zero when capture is off or the ticket is empty; fully stamped once
  /// done() has returned true.
  ticket_latency latency() const noexcept;

  /// The pipeline this submission actually landed on and the topology epoch
  /// its route was decided under (DESIGN.md §11). Stable once the enqueue
  /// call returned; 0/0 on an empty ticket. Under a static topology the
  /// epoch is always 0 and the pipe equals hash%pipelines — under elastic
  /// resizing these are the authoritative placement for journal tooling.
  unsigned pipeline() const noexcept {
    return st_ == nullptr ? 0 : st_->pipe.load(std::memory_order_acquire);
  }
  std::uint64_t route_epoch() const noexcept {
    return st_ == nullptr ? 0 : st_->route_epoch.load(std::memory_order_acquire);
  }

 private:
  friend class session_front;
  explicit ticket(std::shared_ptr<detail::ticket_state> st) : st_(std::move(st)) {}
  std::shared_ptr<detail::ticket_state> st_;
};

/// Thread-safe submission handle over a runtime's session front-end.
/// Cheap to copy; all handles of one runtime share the pipelines. Valid
/// until the runtime stops.
class session {
 public:
  /// Submits one transaction to the next pipeline (round-robin). Parks on
  /// the inbox while the pipeline's backlog is full. Throws
  /// std::invalid_argument on an empty/oversized decomposition and
  /// std::runtime_error once the runtime is stopping.
  ticket submit(std::vector<task_fn> tasks);
  ticket submit_single(task_fn fn);

  /// Key-affinity routing: all submissions with equal keys go to the same
  /// pipeline, so a client's per-key transactions run in submission order.
  ticket submit_keyed(std::uint64_t key, std::vector<task_fn> tasks);

  /// Read-only submission (DESIGN.md §10): declares the transaction free
  /// of writes, so its pipeline driver may serve it inline against the
  /// committed frontier — invisible timestamped reads, no task slots, no
  /// commit serial (the ticket's commit_serial() stays 0 on the fast
  /// path), no journal record. The snapshot equals the committed state at
  /// some frontier during execution; it deliberately does NOT wait for
  /// earlier in-flight submissions, so there is no read-your-writes
  /// ordering against still-queued tickets — wait() on the writing ticket
  /// first when that order matters. A closure that writes anyway (or keeps
  /// conflicting past config.read_retry_cap) transparently falls back to
  /// the full task path. With config.read_path off every submit_read takes
  /// the full path.
  ticket submit_read(std::vector<task_fn> tasks);
  ticket submit_read_single(task_fn fn);
  /// Key-routed read-only submission: shares the key's pipeline (and
  /// driver) with submit_keyed writers. The fast path still reads the
  /// committed frontier — it does not order against in-flight writes of
  /// the key.
  ticket submit_read_keyed(std::uint64_t key, std::vector<task_fn> tasks);

  /// Batched submission (DESIGN.md §8.5): carries the whole vector of
  /// transactions to ONE pipeline in chunks of config.session_batch_max
  /// per inbox cell — one push/pop/wake per chunk instead of per
  /// transaction. Returns one ticket per transaction, in order; the batch
  /// executes in submission order on its pipeline. Validates every
  /// transaction before enqueuing anything.
  std::vector<ticket> submit_batch(std::vector<std::vector<task_fn>> txs);
  /// Batched submission with key affinity: batches of equal keys share a
  /// pipeline, so per-key FIFO order spans batches of one client.
  std::vector<ticket> submit_batch_keyed(std::uint64_t key,
                                         std::vector<std::vector<task_fn>> txs);

  unsigned pipelines() const noexcept;
  /// The pipeline submit_keyed(key, ...) routes to under the CURRENT
  /// topology — exposes the routing so harnesses can match submissions to
  /// per-pipeline commit journals. Under elastic resizing this is a
  /// snapshot; a ticket's authoritative placement is ticket::pipeline().
  unsigned pipeline_for_key(std::uint64_t key) const noexcept;

  // --- Elastic topology (DESIGN.md §11). All of these are valid whether or
  // --- not config.elastic is on; with it off the topology is pinned at
  // --- num_threads, epoch 0.
  /// Number of currently ACTIVE pipelines (<= pipelines()).
  unsigned active_pipelines() const noexcept;
  /// Current topology epoch (bumps once per resize).
  std::uint64_t topology_epoch() const noexcept;
  /// Manual topology control: resizes the active pipeline set to `width`
  /// (clamped to [min_pipelines, num_threads] with elastic on, [1,
  /// num_threads] otherwise), running the full fence/drain/handoff
  /// protocol. Serialized against the controller and other callers; returns
  /// false when the width is unchanged after clamping or the front is
  /// stopping. Blocks until queued work of the previous epoch drained (the
  /// resize fence) — do not call from a driver callback.
  bool resize(unsigned width);
  /// Epoch -> active-width history, oldest first (starts with {0, initial
  /// width}). Journal dumps attach this so the offline checker can validate
  /// placement per epoch.
  std::vector<std::pair<std::uint64_t, unsigned>> topology_history() const;

 private:
  friend class runtime;
  explicit session(session_front& fr) : front_(&fr) {}
  session_front* front_;
};

/// The runtime-owned session machinery: one inbox + driver per pipeline.
/// Internal — created lazily by runtime::open_session(), stopped (drained)
/// by runtime::stop() before the pipelines themselves quiesce.
class session_front {
 public:
  explicit session_front(runtime& rt);
  ~session_front();
  session_front(const session_front&) = delete;
  session_front& operator=(const session_front&) = delete;

  /// Routed enqueue (DESIGN.md §11): `key` selects key-affinity routing
  /// (hash % active width), nullopt round-robins over the active set. The
  /// route is decided *inside* the push protocol so it is always consistent
  /// with the topology epoch the push lands under — callers cannot pick a
  /// pipeline index themselves, a pre-resize index would be stale by the
  /// time the cell lands.
  ticket enqueue(std::optional<std::uint64_t> key, std::vector<task_fn> tasks,
                 bool read_only = false);
  std::vector<ticket> enqueue_batch(std::optional<std::uint64_t> key,
                                    std::vector<std::vector<task_fn>> txs);
  /// The pipeline a key routes to under the current topology (snapshot).
  unsigned route_key(std::uint64_t key) const noexcept;
  unsigned pipelines() const noexcept { return static_cast<unsigned>(pipes_.size()); }

  // --- Elastic topology (DESIGN.md §11) ---
  /// Currently active pipeline count (the prefix [0, width) of pipes_).
  unsigned active_pipelines() const noexcept {
    return topo_width(topo_.load(std::memory_order_seq_cst));
  }
  std::uint64_t topology_epoch() const noexcept {
    return topo_epoch(topo_.load(std::memory_order_seq_cst));
  }
  /// Runs the resize protocol (revive/publish/close/fence/retire); false if
  /// the width is unchanged after clamping or the front is stopping.
  /// Serialized under resize_mu_ against concurrent resizes and stop().
  bool apply_resize(unsigned width);
  /// Epoch -> width history, oldest first.
  std::vector<std::pair<std::uint64_t, unsigned>> topology_history() const;
  /// Width clamp for manual/controller resizes.
  unsigned clamp_width(unsigned width) const noexcept;

  /// Folds the drivers' counters (batches, callbacks, driver parks) into
  /// `total`. Quiesce (stop) first for exact values.
  void accumulate_stats(util::stat_block& total) const;

  /// Drains every inbox, submits the backlog, drains the pipelines,
  /// retires every outstanding ticket and joins the drivers. Idempotent;
  /// further submissions throw.
  void stop();

 private:
  friend class topology_controller;

  // Topology word layout (DESIGN.md §11): one seq_cst atomic packs the whole
  // routing epoch so clients read a consistent {width, prev_width, epoch,
  // fence} in a single load. Bits [0,17) width, [17,34) previous width,
  // [34,63) epoch, bit 63 fence-pending. 17 bits of width bound num_threads
  // at 128Ki pipelines; 29 epoch bits wrap after 500M resizes — the
  // controller's minimum period makes that decades of uptime.
  static constexpr std::uint64_t topo_pack(unsigned width, unsigned prev,
                                           std::uint64_t epoch, bool fence) noexcept {
    return static_cast<std::uint64_t>(width) |
           (static_cast<std::uint64_t>(prev) << 17) |
           ((epoch & ((std::uint64_t{1} << 29) - 1)) << 34) |
           (fence ? (std::uint64_t{1} << 63) : 0);
  }
  static constexpr unsigned topo_width(std::uint64_t w) noexcept {
    return static_cast<unsigned>(w & 0x1ffff);
  }
  static constexpr unsigned topo_prev(std::uint64_t w) noexcept {
    return static_cast<unsigned>((w >> 17) & 0x1ffff);
  }
  static constexpr std::uint64_t topo_epoch(std::uint64_t w) noexcept {
    return (w >> 34) & ((std::uint64_t{1} << 29) - 1);
  }
  static constexpr bool topo_fence(std::uint64_t w) noexcept { return (w >> 63) != 0; }

  /// One inbox cell: a single transaction (the submit() fast path — no
  /// batch-vector allocation) or a batch of them (submit_batch chunks).
  struct submission {
    std::variant<detail::sub_tx, std::vector<detail::sub_tx>> body;
  };
  /// Driver-local completion queue entry. Entries are appended in commit-
  /// serial order (the driver is the pipeline's single submitter), so the
  /// queue head is always the oldest outstanding serial.
  struct pending_ticket {
    std::uint64_t serial = 0;
    std::shared_ptr<detail::ticket_state> tk;
  };
  struct pipe {
    pipe(runtime& rt, unsigned t);
    sched::bounded_inbox<submission> inbox;
    /// Driver-side counters (batches drained, callbacks run, driver
    /// parks); folded into runtime::aggregated_stats().
    util::stat_block stats;

    // --- Read-only fast path execution state (DESIGN.md §10), owned by
    // --- the driver thread.
    /// Dummy slot satisfying task_env's references. Its serial stays 0 —
    /// a value no restart fence ever covers — and only ops_reported and
    /// the mm logs are actually used.
    task_slot ro_slot;
    /// Driver-local virtual clock so task_ctx::work in read closures has
    /// somewhere to advance (never joined into the pipeline's timeline).
    vt::worker_clock ro_clock;
    /// Grace-period frees logged by read closures (log_commit_retire) and
    /// undone allocations of abandoned attempts.
    util::reclaimer ro_reclaimer;
    /// Paces fast-path retries through the restart backoff ladder.
    util::xoshiro256 rng;
    /// Epoch participant pinned around each fast-path attempt, so reads
    /// of reclaimed structures stay within a grace period.
    std::size_t epoch_slot = 0;
    /// The invisible-read frontier validator (stm/readpath.hpp), SwissTM
    /// flavour — the core runtime's table is a SwissTM lock table.
    std::unique_ptr<stm::frontier_reader> reader;

    // --- Elastic topology state (DESIGN.md §11) ---
    /// Transactions successfully pushed into this pipe (counted per tx, not
    /// per cell); bumped by the enqueueing client after the push lands and
    /// BEFORE its parity counter drops, so the controller's post-crossing
    /// snapshot covers it.
    std::atomic<std::uint64_t> enqueued_txs{0};
    /// Transactions fully retired by the driver (completion edge published,
    /// read fast-path included). The resize fence resolves when every
    /// old-active pipe's retired count reaches its enqueued snapshot.
    std::atomic<std::uint64_t> retired_txs{0};
    /// In-flight pusher counters indexed by (route epoch & 1). A client
    /// raises the counter of the epoch it routed under, re-checks the
    /// topology word (seq_cst Dekker with the resize publish), and backs
    /// off/retries if the epoch moved. apply_resize publishes epoch E then
    /// waits for a momentary zero of parity (E-1)&1 per pipe: after that,
    /// every pusher still in flight decided under E, so a snapshot of
    /// enqueued_txs bounds the old epoch's traffic exactly. Parity suffices
    /// because resize E's crossing already cleared all E-1 pushers before
    /// resize E+1 can start (resizes are serialized).
    std::atomic<std::uint64_t> pushers[2] = {{0}, {0}};
    /// 0 = active; 2 = retiring/retired/dormant: the driver drains what is
    /// already published, completes it, and exits. Raised only after the
    /// inbox closed and the pusher crossing confirmed nothing more can
    /// land. Dormant-at-start pipes (elastic, index >= min_pipelines) are
    /// constructed in state 2 with no driver.
    std::atomic<unsigned> retire_state{0};
    /// Controller gauge: inbox-depth EWMA, fixed-point x1000 (observability
    /// only; the controller keeps its own float state).
    std::atomic<std::uint64_t> depth_ewma_milli{0};

    std::thread driver;
  };

  void driver_main(unsigned t);
  /// Spawns pipe t's driver thread (retire_state -> 0, inbox reopened).
  /// Caller must hold resize_mu_ (or be the constructor).
  void start_pipe(unsigned t);
  /// The route-and-push protocol (DESIGN.md §11): decides the route under
  /// the current topology word, raises the parity pusher counter, re-checks
  /// the epoch, honours the resize fence for FIFO submissions whose route
  /// changed, pushes (rerouting on a closed-inbox bounce), stamps every
  /// ticket's placement and bumps the pipe's enqueued count. `route_hash`
  /// is the final routing value (already hashed for keys; the raw
  /// round-robin index for sticky unkeyed batches; nullopt draws a fresh
  /// round-robin index per attempt). `fifo` opts into the resize fence —
  /// keyed writers and batches, whose submission order is guaranteed.
  /// Returns the pipeline the cell landed on.
  unsigned route_and_push(std::optional<std::uint64_t> route_hash, bool fifo,
                          submission&& s, std::uint64_t n_txs);
  /// Fold-at-2^62 round-robin counter draw (raw, caller takes % width).
  std::uint64_t rr_index() noexcept;
  /// Read-only fast path (DESIGN.md §10): runs `tx` inline on the driver
  /// against the committed frontier, retrying conflicts through the
  /// backoff ladder up to config.read_retry_cap attempts. True ⇒ the
  /// ticket completed (commit_serial stays 0); false ⇒ the attempt was
  /// abandoned (a write, or retries exhausted — readpath_fallbacks) and
  /// the caller must install it down the full task path.
  bool execute_read(unsigned t, detail::sub_tx& tx);
  /// Throws std::invalid_argument unless `tasks` is a valid decomposition.
  void validate_tx(const std::vector<task_fn>& tasks) const;
  std::shared_ptr<detail::ticket_state> make_ticket_state() const;
  /// Install phase: publishes every transaction's commit serial under one
  /// submitted_serials() read, then submits them and queues their tickets.
  void install_submission(unsigned t, submission& s,
                          std::deque<pending_ticket>& pending);
  /// Complete phase: retires every queued ticket whose serial the commit
  /// frontier has passed (runs callbacks, publishes the completion edge).
  void complete_passed(unsigned t, std::deque<pending_ticket>& pending);
  void complete_ticket(pipe& p, detail::ticket_state& tk);
  /// Raises the pending-enqueue count and checks the stop flag (Dekker
  /// pairing, see pending_enqueues_); throws once the front is stopping.
  void begin_enqueue();
  /// Drops the pending-enqueue count and, when stopping, wakes every
  /// driver (any of them may be parked on the count's zero crossing).
  void finish_enqueue() noexcept;

  runtime& rt_;
  std::vector<std::unique_ptr<pipe>> pipes_;
  std::atomic<std::uint64_t> rr_{0};
  std::atomic<bool> stopping_{false};
  /// Enqueues between their stopping_ check and their completed push.
  /// Drivers honour the stop flag only once this is zero (seq_cst Dekker
  /// pairing with stopping_), so a submission that passed the check is
  /// always drained — no racing push can strand a ticket in a dead inbox.
  /// Stop-protocol only; the resize fence deliberately does NOT wait on it
  /// (fence-parked pushers hold it — waiting would deadlock; the parity
  /// pusher counters carry the resize crossing instead).
  std::atomic<std::uint64_t> pending_enqueues_{0};

  // --- Elastic topology (DESIGN.md §11) ---
  /// The packed topology word (see topo_pack). seq_cst on both sides of the
  /// pusher-parity Dekker.
  std::atomic<std::uint64_t> topo_{0};
  /// Keyed writers whose route changed across the pending resize park here
  /// until the fence clears (old epoch's traffic on their old pipe
  /// retired) — this is what preserves per-key FIFO across a resize.
  sched::wait_gate fence_gate_;
  /// Serializes apply_resize callers (controller, session::resize, stop).
  std::mutex resize_mu_;
  mutable std::mutex history_mu_;
  std::vector<std::pair<std::uint64_t, unsigned>> history_;
  std::atomic<std::uint64_t> grows_{0};
  std::atomic<std::uint64_t> shrinks_{0};
  std::atomic<std::uint64_t> fence_waits_{0};
  std::atomic<std::uint64_t> reroutes_{0};
  /// Load-driven resize controller (core/topology.hpp); null unless
  /// config.elastic with a non-zero topo_interval_us. Joined first in
  /// stop().
  std::unique_ptr<topology_controller> controller_;
};

}  // namespace tlstm::core
