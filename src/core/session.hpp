// Many-client session front-end (DESIGN.md §8).
//
// The paper's model binds one application thread to one user_thread; the
// session layer decouples them so M concurrent clients share the N fixed
// pipelines:
//
//   tlstm::core::runtime rt(cfg);
//   auto s = rt.open_session();                 // thread-safe handle
//   auto t = s.submit({task1, task2});          // round-robin routed
//   auto u = s.submit_keyed(key, {task3});      // key-affinity routed
//   t.wait(); u.wait();                         // parked per-submission waits
//
// Each pipeline owns a bounded MPSC inbox drained by a dedicated driver
// thread (the pipeline's single submitter, preserving the one-submitter
// invariant of user_thread). Full inboxes backpressure clients by parking
// them on the inbox gate; each submission returns a ticket that parks on
// the pipeline's wait_gate until exactly that transaction's commit frontier
// passes it, so clients drain individually instead of stalling the whole
// pipeline.
//
// Domain note: sessions live in wall-clock land. The pipelines' virtual
// clocks keep running underneath (drivers are the submitting user-threads
// of §5), but ticket waits use unstamped frontier loads — a session client
// has no worker_clock to join.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/task.hpp"
#include "core/thread_state.hpp"
#include "sched/inbox.hpp"

namespace tlstm::core {

class runtime;
class session_front;

namespace detail {
/// Shared completion state of one session submission. Ticket waiting is
/// point-to-point (no thundering herd on the pipeline gate): the driver
/// wakes `install_gate` once when it assigns the commit serial, and the
/// committing worker wakes its own slot's gate — on which a ticket for that
/// serial parks — once per commit.
struct ticket_state {
  /// Serial of the transaction's commit-task; 0 until the driver installs
  /// the transaction (the commit frontier passing this serial == done).
  std::atomic<std::uint64_t> commit_serial{0};
  sched::wait_gate install_gate;
  thread_state* thr = nullptr;          ///< routed pipeline
  const sched::wait_params* waits = nullptr;
};
}  // namespace detail

/// Completion handle for one session submission. Copyable; wait() may be
/// called from any thread, any number of times — but not after the owning
/// runtime is destroyed (runtime::stop() completes every ticket first, so
/// waiting before shutdown always terminates).
class ticket {
 public:
  ticket() = default;

  /// Blocks (bounded spin, then parked on the pipeline's gate) until the
  /// submitted transaction has committed.
  void wait();
  /// Non-blocking completion probe.
  bool done() const noexcept;
  bool valid() const noexcept { return st_ != nullptr; }

 private:
  friend class session_front;
  explicit ticket(std::shared_ptr<detail::ticket_state> st) : st_(std::move(st)) {}
  std::shared_ptr<detail::ticket_state> st_;
};

/// Thread-safe submission handle over a runtime's session front-end.
/// Cheap to copy; all handles of one runtime share the pipelines. Valid
/// until the runtime stops.
class session {
 public:
  /// Submits one transaction to the next pipeline (round-robin). Parks on
  /// the inbox while the pipeline's backlog is full. Throws
  /// std::invalid_argument on an empty/oversized decomposition and
  /// std::runtime_error once the runtime is stopping.
  ticket submit(std::vector<task_fn> tasks);
  ticket submit_single(task_fn fn);

  /// Key-affinity routing: all submissions with equal keys go to the same
  /// pipeline, so a client's per-key transactions run in submission order.
  ticket submit_keyed(std::uint64_t key, std::vector<task_fn> tasks);

  unsigned pipelines() const noexcept;

 private:
  friend class runtime;
  explicit session(session_front& fr) : front_(&fr) {}
  session_front* front_;
};

/// The runtime-owned session machinery: one inbox + driver per pipeline.
/// Internal — created lazily by runtime::open_session(), stopped (drained)
/// by runtime::stop() before the pipelines themselves quiesce.
class session_front {
 public:
  explicit session_front(runtime& rt);
  ~session_front();
  session_front(const session_front&) = delete;
  session_front& operator=(const session_front&) = delete;

  ticket enqueue(unsigned pipe, std::vector<task_fn> tasks);
  unsigned route_next() noexcept;
  unsigned route_key(std::uint64_t key) const noexcept;
  unsigned pipelines() const noexcept { return static_cast<unsigned>(pipes_.size()); }

  /// Drains every inbox, submits the backlog, drains the pipelines and
  /// joins the drivers. Idempotent; further submissions throw.
  void stop();

 private:
  struct submission {
    std::vector<task_fn> tasks;
    std::shared_ptr<detail::ticket_state> tk;
  };
  struct pipe {
    explicit pipe(std::size_t capacity) : inbox(capacity) {}
    sched::bounded_inbox<submission> inbox;
    std::thread driver;
  };

  void driver_main(unsigned t);
  /// Drops the pending-enqueue count and, when stopping, wakes every
  /// driver (any of them may be parked on the count's zero crossing).
  void finish_enqueue() noexcept;

  runtime& rt_;
  std::vector<std::unique_ptr<pipe>> pipes_;
  std::atomic<std::uint64_t> rr_{0};
  std::atomic<bool> stopping_{false};
  /// Enqueues between their stopping_ check and their completed push.
  /// Drivers honour the stop flag only once this is zero (seq_cst Dekker
  /// pairing with stopping_), so a submission that passed the check is
  /// always drained — no racing push can strand a ticket in a dead inbox.
  std::atomic<std::uint64_t> pending_enqueues_{0};
};

}  // namespace tlstm::core
