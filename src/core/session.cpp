// Session front-end implementation: per-pipeline driver threads draining
// bounded MPSC inboxes in three phases — drain (pop every published cell),
// install (publish commit serials, submit), complete (retire tickets the
// commit frontier passed, running their callbacks). See DESIGN.md §8.4/§8.5.
#include "core/session.hpp"

#include <cassert>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/runtime.hpp"
#include "core/topology.hpp"
#include "sched/backoff_ladder.hpp"
#include "stm/readpath.hpp"

namespace tlstm::core {

namespace {
/// Latency capture clock (config.capture_latency): monotonic nanoseconds.
/// Only read on session paths — submit, install, and the driver's complete
/// phase — never by workers.
std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

// ---------------------------------------------------------------------------
// ticket
// ---------------------------------------------------------------------------

void ticket::wait() {
  if (st_ == nullptr) throw std::logic_error("ticket::wait on an empty ticket");
  detail::ticket_state& st = *st_;
  // Single completion edge: the driver stores `completed` (release) after
  // the frontier passed the serial AND every callback ran, then wakes this
  // gate. Everything the wait touches lives in the shared ticket state, so
  // a wait racing (or following) runtime shutdown is safe — stop() retires
  // every issued ticket before the runtime dies.
  st.gate.await(st.waits, [&] {
    return st.completed.load(std::memory_order_acquire);
  });
  // Callback exceptions are never swallowed: the first one is rethrown by
  // every wait() on this ticket (written happens-before the completed
  // store).
  if (st.callback_error) std::rethrow_exception(st.callback_error);
}

bool ticket::done() const noexcept {
  return st_ != nullptr && st_->completed.load(std::memory_order_acquire);
}

void ticket::then(std::function<void()> fn) {
  if (st_ == nullptr) throw std::logic_error("ticket::then on an empty ticket");
  detail::ticket_state& st = *st_;
  {
    std::lock_guard<std::mutex> lk(st.cb_mu);
    if (!st.completing) {
      st.callbacks.push_back(std::move(fn));
      return;
    }
  }
  // The driver already claimed the callback list (the completion edge has
  // passed): run inline in the registering thread — still never a
  // committing worker — and let exceptions propagate to the caller.
  fn();
}

ticket_latency ticket::latency() const noexcept {
  ticket_latency out;
  if (st_ == nullptr) return out;
  // Acquire on the completion flag orders the relaxed stamp loads after a
  // completed ticket's stores; a racing read of an in-flight ticket just
  // sees the not-yet-reached points as 0.
  (void)st_->completed.load(std::memory_order_acquire);
  out.submit_ns = st_->t_submit_ns.load(std::memory_order_relaxed);
  out.install_ns = st_->t_install_ns.load(std::memory_order_relaxed);
  out.commit_ns = st_->t_commit_ns.load(std::memory_order_relaxed);
  out.callback_ns = st_->t_callback_ns.load(std::memory_order_relaxed);
  return out;
}

// ---------------------------------------------------------------------------
// session
// ---------------------------------------------------------------------------

ticket session::submit(std::vector<task_fn> tasks) {
  return front_->enqueue(std::nullopt, std::move(tasks));
}

ticket session::submit_single(task_fn fn) {
  std::vector<task_fn> one;
  one.push_back(std::move(fn));
  return submit(std::move(one));
}

ticket session::submit_keyed(std::uint64_t key, std::vector<task_fn> tasks) {
  return front_->enqueue(key, std::move(tasks));
}

ticket session::submit_read(std::vector<task_fn> tasks) {
  return front_->enqueue(std::nullopt, std::move(tasks), /*read_only=*/true);
}

ticket session::submit_read_single(task_fn fn) {
  std::vector<task_fn> one;
  one.push_back(std::move(fn));
  return submit_read(std::move(one));
}

ticket session::submit_read_keyed(std::uint64_t key, std::vector<task_fn> tasks) {
  return front_->enqueue(key, std::move(tasks), /*read_only=*/true);
}

std::vector<ticket> session::submit_batch(std::vector<std::vector<task_fn>> txs) {
  return front_->enqueue_batch(std::nullopt, std::move(txs));
}

std::vector<ticket> session::submit_batch_keyed(std::uint64_t key,
                                                std::vector<std::vector<task_fn>> txs) {
  return front_->enqueue_batch(key, std::move(txs));
}

unsigned session::pipelines() const noexcept { return front_->pipelines(); }

unsigned session::pipeline_for_key(std::uint64_t key) const noexcept {
  return front_->route_key(key);
}

unsigned session::active_pipelines() const noexcept {
  return front_->active_pipelines();
}

std::uint64_t session::topology_epoch() const noexcept {
  return front_->topology_epoch();
}

bool session::resize(unsigned width) { return front_->apply_resize(width); }

std::vector<std::pair<std::uint64_t, unsigned>> session::topology_history() const {
  return front_->topology_history();
}

// ---------------------------------------------------------------------------
// session_front
// ---------------------------------------------------------------------------

session_front::pipe::pipe(runtime& rt, unsigned t)
    : inbox(rt.cfg().session_inbox_capacity),
      ro_reclaimer(rt.epochs()),
      // Stream disjoint from the worker rngs (seeded 0xfeedface): drivers
      // only pace backoff with it, but keep the streams distinct anyway.
      rng(0xbead5e55ULL, t),
      epoch_slot(rt.epochs().register_participant()),
      reader(std::make_unique<stm::snapshot_reader<stm::swiss_frontier_adapter>>(
          stm::swiss_frontier_adapter{&rt.table()}, rt.commit_ts())) {}

session_front::session_front(runtime& rt) : rt_(rt) {
  const unsigned n = rt.num_threads();
  const config& cfg = rt.cfg();
  // Initial active width matches the worker groups the runtime spawned:
  // the [0, min_pipelines) prefix with elastic on, everything otherwise.
  const unsigned start = cfg.elastic ? cfg.min_pipelines : n;
  pipes_.reserve(n);
  for (unsigned t = 0; t < n; ++t) {
    pipes_.push_back(std::make_unique<pipe>(rt, t));
  }
  topo_.store(topo_pack(start, start, 0, false), std::memory_order_seq_cst);
  history_.emplace_back(0, start);
  // Hook the commit frontier to the drivers' park gates *before* any driver
  // (and hence any commit this front can cause) exists: committing workers
  // wake the consumer gate so a driver parked for completions never sleeps
  // through a frontier advance. Dormant pipelines are hooked too — the gate
  // outlives their drivers' comings and goings, and nothing commits on a
  // dormant pipeline anyway.
  for (unsigned t = 0; t < n; ++t) {
    rt.threads_[t]->completion_hook.store(&pipes_[t]->inbox.consumer_gate(),
                                          std::memory_order_release);
  }
  // Dormant tail (elastic): constructed retired with a closed inbox and no
  // driver; apply_resize revives them on a grow.
  for (unsigned t = start; t < n; ++t) {
    pipes_[t]->retire_state.store(2, std::memory_order_seq_cst);
    pipes_[t]->inbox.close();
  }
  for (unsigned t = 0; t < start; ++t) start_pipe(t);
  if (cfg.elastic && cfg.topo_interval_us > 0) {
    controller_ = std::make_unique<topology_controller>(*this);
  }
}

session_front::~session_front() { stop(); }

void session_front::start_pipe(unsigned t) {
  pipe& p = *pipes_[t];
  p.retire_state.store(0, std::memory_order_seq_cst);
  p.inbox.reopen();
  p.driver = std::thread([this, t] { driver_main(t); });
}

std::uint64_t session_front::rr_index() noexcept {
  const std::uint64_t i = rr_.fetch_add(1, std::memory_order_relaxed);
  // Wrap fairness: fold the counter back into a small congruent value long
  // before u64 overflow. At the wrap the raw modulo sequence would jump for
  // non-power-of-two pipeline counts (2^64 mod n != 0), breaking the
  // round-robin invariant; folding to i mod n preserves the phase exactly.
  // Any fetch_add racing the fold either lands before the CAS (its value is
  // part of `cur` and survives the fold mod n) or retries it. Folding
  // modulo the FULL pipe count keeps the fold width-independent — callers
  // take % active width themselves, and a fold racing a resize stays a
  // congruent rotation either way.
  constexpr std::uint64_t fold_at = std::uint64_t{1} << 62;
  if (i >= fold_at) {
    std::uint64_t cur = rr_.load(std::memory_order_relaxed);
    while (cur >= fold_at &&
           !rr_.compare_exchange_weak(cur, cur % pipes_.size(),
                                      std::memory_order_relaxed)) {
    }
  }
  return i;
}

unsigned session_front::route_key(std::uint64_t key) const noexcept {
  // The public hash (session.hpp) so offline checkers reproduce placement.
  return static_cast<unsigned>(session_route_hash(key) %
                               active_pipelines());
}

void session_front::validate_tx(const std::vector<task_fn>& tasks) const {
  if (tasks.empty()) throw std::invalid_argument("transaction needs >= 1 task");
  if (tasks.size() > rt_.cfg().spec_depth) {
    throw std::invalid_argument("transaction has more tasks than spec_depth");
  }
}

std::shared_ptr<detail::ticket_state> session_front::make_ticket_state() const {
  auto st = std::make_shared<detail::ticket_state>();
  st->waits = rt_.cfg().waits;  // by value: outlives the runtime
  if (rt_.cfg().capture_latency) {
    // Submit capture point (§9): stamped before the inbox push, so
    // submit→install includes backpressure parking and driver drain delay.
    st->t_submit_ns.store(now_ns(), std::memory_order_relaxed);
  }
  return st;
}

void session_front::begin_enqueue() {
  // Dekker pairing with the drivers' stop predicate: the pending count is
  // raised *before* the stopping check (both seq_cst), so either this
  // enqueue observes stopping and backs out, or the drivers observe a
  // non-zero pending count and keep draining until the push lands.
  pending_enqueues_.fetch_add(1, std::memory_order_seq_cst);
  if (stopping_.load(std::memory_order_seq_cst)) {
    finish_enqueue();
    throw std::runtime_error("session front-end is stopping");
  }
}

void session_front::finish_enqueue() noexcept {
  pending_enqueues_.fetch_sub(1, std::memory_order_seq_cst);
  // The count reaching zero can be what releases the drivers' stop
  // predicate — and any driver may be the one parked on it.
  if (stopping_.load(std::memory_order_seq_cst)) {
    for (auto& p : pipes_) p->inbox.wake_all();
  }
}

ticket session_front::enqueue(std::optional<std::uint64_t> key,
                              std::vector<task_fn> tasks, bool read_only) {
  validate_tx(tasks);
  begin_enqueue();
  // Balance begin_enqueue on EVERY exit, exceptions included (e.g. an
  // allocation failure building the submission): a leaked pending count
  // would make the drivers' stop predicate unsatisfiable forever.
  struct balance {
    session_front& f;
    ~balance() { f.finish_enqueue(); }
  } guard{*this};
  auto st = make_ticket_state();
  submission s{detail::sub_tx{std::move(tasks), st, read_only}};
  // Keyed writers are the FIFO class (per-key submission order is
  // guaranteed, so they honour the resize fence); reads route by key but
  // never fence — the fast path reads the committed frontier and makes no
  // ordering promise against in-flight writes.
  const std::optional<std::uint64_t> rh =
      key ? std::optional<std::uint64_t>(session_route_hash(*key))
          : std::nullopt;
  route_and_push(rh, key.has_value() && !read_only, std::move(s), 1);
  return ticket(std::move(st));
}

std::vector<ticket> session_front::enqueue_batch(std::optional<std::uint64_t> key,
                                                 std::vector<std::vector<task_fn>> txs) {
  if (txs.empty()) throw std::invalid_argument("batch needs >= 1 transaction");
  // All-or-nothing validation: reject the whole batch before any enqueue
  // side effect, so a bad transaction in the middle cannot leave a prefix
  // in flight.
  for (const auto& tasks : txs) validate_tx(tasks);
  begin_enqueue();
  struct balance {
    session_front& f;
    ~balance() { f.finish_enqueue(); }
  } guard{*this};
  std::vector<ticket> out;
  out.reserve(txs.size());
  // One sticky route for the whole batch (the raw round-robin draw for
  // unkeyed batches): chunks of one batch must land on one pipeline so the
  // batch executes in submission order. Batches are always FIFO-class —
  // across a mid-batch resize the fence holds later chunks back until the
  // earlier ones retired on the old pipe.
  const std::uint64_t rh = key ? session_route_hash(*key) : rr_index();
  const std::size_t chunk_max = rt_.cfg().session_batch_max;
  std::size_t i = 0;
  while (i < txs.size()) {
    const std::size_t n = std::min(chunk_max, txs.size() - i);
    std::vector<detail::sub_tx> chunk;
    chunk.reserve(n);
    for (std::size_t k = 0; k < n; ++k, ++i) {
      auto st = make_ticket_state();
      out.push_back(ticket(st));
      chunk.push_back(detail::sub_tx{std::move(txs[i]), std::move(st)});
    }
    submission s{std::move(chunk)};
    route_and_push(rh, /*fifo=*/true, std::move(s),
                   static_cast<std::uint64_t>(n));
  }
  return out;
}

unsigned session_front::route_and_push(std::optional<std::uint64_t> route_hash,
                                       bool fifo, submission&& s,
                                       std::uint64_t n_txs) {
  const sched::wait_params wp = rt_.governor().params(sched::gate_class::inbox);
  for (;;) {
    const std::uint64_t w = topo_.load(std::memory_order_seq_cst);
    const unsigned width = topo_width(w);
    // Resize fence (DESIGN.md §11): while a resize is pending, a FIFO
    // submission whose route DIFFERS between the old and new width must
    // not land — its key's old-epoch traffic may still be in flight on the
    // old pipeline, and landing on the new one would reorder the key. Park
    // until the fence clears. Unkeyed singles and reads sail through.
    if (fifo && route_hash && topo_fence(w)) {
      const std::uint64_t h = *route_hash;
      if (h % width != h % topo_prev(w)) {
        fence_waits_.fetch_add(1, std::memory_order_relaxed);
        fence_gate_.await(wp, [&] {
          const std::uint64_t cur = topo_.load(std::memory_order_seq_cst);
          return !topo_fence(cur) ||
                 h % topo_width(cur) == h % topo_prev(cur) ||
                 stopping_.load(std::memory_order_seq_cst);
        });
        continue;  // re-read the topology word
      }
    }
    const unsigned target = static_cast<unsigned>(
        (route_hash ? *route_hash : rr_index()) % width);
    pipe& p = *pipes_[target];
    const std::uint64_t e = topo_epoch(w);
    // Parity pusher Dekker with apply_resize's epoch publish: raise the
    // counter of the epoch the route was decided under, then re-check. If
    // the epoch moved, the decision is stale — undo and re-route. After
    // apply_resize observes a momentary zero of the old parity, every
    // pusher still in flight provably decided under the new epoch, so the
    // enqueued snapshot taken then bounds the old epoch's traffic exactly.
    p.pushers[e & 1].fetch_add(1, std::memory_order_seq_cst);
    if (topo_epoch(topo_.load(std::memory_order_seq_cst)) != e) {
      p.pushers[e & 1].fetch_sub(1, std::memory_order_seq_cst);
      continue;
    }
    // Stamp placements before the push — the driver owns the cell the
    // moment it lands. A bounced attempt re-stamps under its new route.
    auto stamp = [&](detail::sub_tx& tx) {
      tx.tk->pipe.store(target, std::memory_order_relaxed);
      tx.tk->route_epoch.store(e, std::memory_order_release);
    };
    if (auto* one = std::get_if<detail::sub_tx>(&s.body)) {
      stamp(*one);
    } else {
      for (detail::sub_tx& tx : std::get<std::vector<detail::sub_tx>>(s.body)) {
        stamp(tx);
      }
    }
    // Push. Backpressure parks on the producers' gate under the governed
    // inbox budget, but bails the moment the inbox closes (a shrink retired
    // this pipeline) — the reroute verdict; the outer loop re-routes under
    // the new topology.
    bool pushed = false;
    p.inbox.producer_gate().await(wp, [&] {
      pushed = p.inbox.try_push(std::move(s));
      return pushed || p.inbox.is_closed();
    });
    if (!pushed) {
      p.pushers[e & 1].fetch_sub(1, std::memory_order_seq_cst);
      reroutes_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Enqueued bump BEFORE the parity drop (the drop's release side orders
    // it): apply_resize's post-crossing snapshot must cover this cell.
    p.enqueued_txs.fetch_add(n_txs, std::memory_order_relaxed);
    p.pushers[e & 1].fetch_sub(1, std::memory_order_seq_cst);
    return target;
  }
}

unsigned session_front::clamp_width(unsigned width) const noexcept {
  const config& cfg = rt_.cfg();
  const unsigned lo = cfg.elastic ? cfg.min_pipelines : 1;
  const unsigned hi = pipelines();
  if (width < lo) return lo;
  if (width > hi) return hi;
  return width;
}

std::vector<std::pair<std::uint64_t, unsigned>> session_front::topology_history() const {
  std::lock_guard<std::mutex> lk(history_mu_);
  return history_;
}

bool session_front::apply_resize(unsigned width) {
  std::lock_guard<std::mutex> lk(resize_mu_);
  if (stopping_.load(std::memory_order_seq_cst)) return false;
  width = clamp_width(width);
  const std::uint64_t w0 = topo_.load(std::memory_order_seq_cst);
  const unsigned old_w = topo_width(w0);
  if (width == old_w) return false;
  const std::uint64_t e = topo_epoch(w0) + 1;

  // Grow: revive the incoming pipelines BEFORE publishing the new epoch, so
  // the first push routed under it finds a live worker group, an open inbox
  // and a running driver.
  if (width > old_w) {
    for (unsigned t = old_w; t < width; ++t) {
      rt_.spawn_worker_group(t);
      start_pipe(t);
    }
  }
  {
    std::lock_guard<std::mutex> hlk(history_mu_);
    history_.emplace_back(e, width);
  }
  // Publish the new routing epoch with the fence pending. From here every
  // new route decision lands on the [0, width) prefix; FIFO pushers whose
  // route moved park on fence_gate_ until the old epoch drained.
  topo_.store(topo_pack(width, old_w, e, true), std::memory_order_seq_cst);
  if (width > old_w) {
    grows_.fetch_add(1, std::memory_order_relaxed);
  } else {
    shrinks_.fetch_add(1, std::memory_order_relaxed);
  }
  // Shrink: close the retiring inboxes now that the topology points clients
  // at the surviving prefix — parked producers wake, read the close as a
  // reroute verdict and resubmit; cells already published stay poppable for
  // the retiring drivers to drain.
  if (width < old_w) {
    for (unsigned t = width; t < old_w; ++t) pipes_[t]->inbox.close();
  }
  // Old-parity pusher crossing, then the enqueued snapshot (see
  // route_and_push): after parity (e-1)&1 touches zero on a pipe, every
  // in-flight pusher routes under epoch e, so the snapshot is an exact
  // upper bound of the old epoch's traffic on that pipe. Terminates because
  // old-parity pushers either land (active pipes keep draining) or bounce
  // off the closed inboxes.
  std::vector<std::uint64_t> snap(old_w, 0);
  for (unsigned t = 0; t < old_w; ++t) {
    pipe& p = *pipes_[t];
    while (p.pushers[(e - 1) & 1].load(std::memory_order_seq_cst) != 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
    snap[t] = p.enqueued_txs.load(std::memory_order_seq_cst);
  }
  // Shrink: nothing further can land on the retiring pipelines — let their
  // drivers finish the published prefix (drain, install, complete, quiesce)
  // and exit, then retire the worker groups. Zero drops: every cell that
  // ever landed is installed and its ticket completed before the join
  // returns.
  if (width < old_w) {
    for (unsigned t = width; t < old_w; ++t) {
      pipe& p = *pipes_[t];
      p.retire_state.store(2, std::memory_order_seq_cst);
      p.inbox.wake_all();
      if (p.driver.joinable()) p.driver.join();
      rt_.retire_worker_group(t);
    }
  }
  // Resolve the fence: per-key FIFO needs the old epoch's enqueued traffic
  // fully retired (commit_ts assigned — the global commit clock is
  // monotonic) before a moved key's next submission lands on its new
  // pipeline.
  for (unsigned t = 0; t < old_w; ++t) {
    pipe& p = *pipes_[t];
    while (p.retired_txs.load(std::memory_order_seq_cst) < snap[t]) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  topo_.store(topo_pack(width, old_w, e, false), std::memory_order_seq_cst);
  fence_gate_.wake_all();
  return true;
}

void session_front::install_submission(unsigned t, submission& s,
                                       std::deque<pending_ticket>& pending) {
  user_thread& th = rt_.thread(t);
  util::stat_block& st = pipes_[t]->stats;
  st.session_batches++;
  auto for_each_tx = [&](auto&& fn) {
    if (auto* one = std::get_if<detail::sub_tx>(&s.body)) {
      fn(*one);
    } else {
      for (detail::sub_tx& tx : std::get<std::vector<detail::sub_tx>>(s.body)) fn(tx);
    }
  };
  // Read-only fast path (DESIGN.md §10): serve declared reads inline at
  // the committed frontier before any serial assignment. A served
  // transaction completes right here (ticket retired, commit_serial stays
  // 0); one that conflicted out or turned out to write keeps its ticket
  // and joins the full path below.
  const bool fast = rt_.cfg().read_path;
  for_each_tx([&](detail::sub_tx& tx) {
    st.session_batch_txs++;
    if (fast && tx.read_only && execute_read(t, tx)) tx.tk.reset();
  });
  // One high-water read covers the whole cell (the driver is the pipeline's
  // only submitter, so serial assignment is deterministic from here), and
  // every commit serial is published before the first submit: a done()/
  // diagnostic probe racing the batch observes its serial even while an
  // earlier transaction's submit is parked on slot backpressure.
  std::uint64_t serial = th.submitted_serials();
  for_each_tx([&](detail::sub_tx& tx) {
    if (tx.tk == nullptr) return;  // retired on the read fast path
    serial += tx.tasks.size();
    tx.tk->commit_serial.store(serial, std::memory_order_release);
  });
  const bool capture = rt_.cfg().capture_latency;
  for_each_tx([&](detail::sub_tx& tx) {
    if (tx.tk == nullptr) return;  // retired on the read fast path
    const std::uint64_t cs = tx.tk->commit_serial.load(std::memory_order_relaxed);
    if (capture) {
      // Install capture point (§9): the hand-off into the pipeline. The
      // submit below may itself park on slot backpressure — that belongs
      // to the install→commit phase (it is pipeline occupancy, not inbox
      // queueing), so the stamp precedes it.
      tx.tk->t_install_ns.store(now_ns(), std::memory_order_relaxed);
    }
    th.submit(std::move(tx.tasks));
    pending.push_back(pending_ticket{cs, std::move(tx.tk)});
  });
}

bool session_front::execute_read(unsigned t, detail::sub_tx& tx) {
  pipe& p = *pipes_[t];
  util::stat_block& st = p.stats;
  const config& cfg = rt_.cfg();
  if (cfg.capture_latency) {
    // Install capture point (§9): for a fast-path read, "install" is the
    // start of inline execution. On fallback the full path re-stamps it —
    // a later value, so the stamps stay monotone either way.
    tx.tk->t_install_ns.store(now_ns(), std::memory_order_relaxed);
  }
  // The env the read closures run against: the pipe's dummy slot (serial 0)
  // with the frontier validator switched in — task_ctx routes every
  // transactional op accordingly (core/task.cpp).
  task_env env{rt_, *rt_.threads_[t], p.ro_slot, p.ro_clock,
               st,  p.ro_reclaimer,   p.reader.get()};
  // Abandoned attempts undo their allocations (the abort-path contract of
  // access_logs) and drop everything else.
  auto unwind = [&] {
    for (const stm::mm_action& a : p.ro_slot.logs.alloc_undo) {
      p.ro_reclaimer.retire(a.obj, a.fn, a.ctx);
    }
    p.ro_slot.logs.clear_for_restart();
  };
  for (unsigned attempt = 1; attempt <= cfg.read_retry_cap; ++attempt) {
    // Pin the reclamation epoch across the attempt: structure reads may
    // chase pointers a concurrent committer just retired.
    rt_.epochs().pin(p.epoch_slot);
    p.reader->begin();
    p.ro_slot.ops_reported = 0;
    try {
      for (task_fn& fn : tx.tasks) {
        task_ctx ctx(env);
        fn(ctx);
      }
      // The commit point of a read-only transaction: prove every logged
      // read still current at the final frontier. No stripe was ever
      // owned, so success publishes nothing — it only completes the
      // ticket.
      if (!p.reader->revalidate()) throw stm::read_conflict{};
      rt_.epochs().unpin(p.epoch_slot);
      for (const stm::mm_action& a : p.ro_slot.logs.commit_retire) {
        p.ro_reclaimer.retire(a.obj, a.fn, a.ctx);
      }
      p.ro_slot.logs.clear_for_restart();
      st.user_ops += p.ro_slot.ops_reported;
      st.readpath_hits++;
      // Commit-observed + callback stamps and the completion edge come
      // from the shared completion path (distinct interpretation for
      // reads: commit = snapshot validated, DESIGN.md §10).
      complete_ticket(p, *tx.tk);
      return true;
    } catch (const stm::read_conflict&) {
      rt_.epochs().unpin(p.epoch_slot);
      unwind();
      st.readpath_retries++;
      if (attempt < cfg.read_retry_cap) {
        sched::ladder_pause(cfg.restart_backoff, attempt, cfg.backoff_max_shift,
                            p.rng);
      }
    } catch (const stm::read_needs_write&) {
      rt_.epochs().unpin(p.epoch_slot);
      unwind();
      break;  // declared read-only but wrote: full path, immediately
    }
  }
  st.readpath_fallbacks++;
  return false;
}

void session_front::complete_ticket(pipe& p, detail::ticket_state& tk) {
  util::stat_block& st = p.stats;
  const bool capture = rt_.cfg().capture_latency;
  if (capture) {
    // Commit-observed capture point (§9): the driver saw the commit
    // frontier pass this serial. The true commit happened up to one
    // completion-hook wake earlier; that observation delay is part of what
    // a session client experiences, so it is deliberately included here
    // rather than stamped by the committing worker.
    tk.t_commit_ns.store(now_ns(), std::memory_order_relaxed);
  }
  std::vector<std::function<void()>> cbs;
  {
    std::lock_guard<std::mutex> lk(tk.cb_mu);
    tk.completing = true;  // late then() registrations now run inline
    cbs.swap(tk.callbacks);
  }
  std::exception_ptr err;
  for (auto& cb : cbs) {
    st.session_callbacks++;
    try {
      cb();
    } catch (...) {
      // Never swallowed: counted, and the first one is rethrown by every
      // wait() on this ticket.
      st.session_callback_errors++;
      if (!err) err = std::current_exception();
    }
  }
  if (capture) {
    // Callback capture point (§9): callbacks ran, the completion edge is
    // about to publish. Stamped before the release-store so a waiter that
    // observes `completed` always reads a fully stamped record.
    tk.t_callback_ns.store(now_ns(), std::memory_order_relaxed);
    st.latency_samples++;
  }
  tk.callback_error = err;  // published by the completed release-store
  tk.completed.store(true, std::memory_order_release);
  tk.gate.wake_all();
  // Retirement counter (DESIGN.md §11): pairs with enqueued_txs — the
  // resize fence resolves when every old-active pipe's retired count
  // reaches its enqueued snapshot. Counted here so the read fast path and
  // the full path both land exactly once per transaction.
  p.retired_txs.fetch_add(1, std::memory_order_relaxed);
}

void session_front::complete_passed(unsigned t, std::deque<pending_ticket>& pending) {
  const thread_state& thr = *rt_.threads_[t];
  const std::uint64_t frontier = thr.committed_task.load_unstamped();
  while (!pending.empty() && pending.front().serial <= frontier) {
    complete_ticket(*pipes_[t], *pending.front().tk);
    pending.pop_front();
  }
}

void session_front::driver_main(unsigned t) {
  user_thread& th = rt_.thread(t);
  thread_state& thr = *rt_.threads_[t];
  pipe& p = *pipes_[t];
  sched::wait_governor& gov = rt_.governor();
  // Honour the stop flag only once no enqueue is mid-push (see
  // pending_enqueues_): the drain keeps going until the inbox is empty AND
  // no racing submission can still land in it. Elastic retirement
  // (retire_state == 2) is simpler: it is raised only after the inbox
  // closed and the pusher crossing confirmed nothing further can land, so
  // the published prefix is all there is — no pending-enqueue Dekker
  // needed (in-flight enqueues bounce off the closed inbox and reroute).
  auto leaving = [&] {
    return (stopping_.load(std::memory_order_seq_cst) &&
            pending_enqueues_.load(std::memory_order_seq_cst) == 0) ||
           p.retire_state.load(std::memory_order_acquire) == 2;
  };
  std::vector<submission> batch;
  std::deque<pending_ticket> pending;
  bool drained_out = false;
  while (!drained_out) {
    // --- drain phase: take every published inbox cell without blocking.
    batch.clear();
    p.inbox.try_pop_all(batch);
    if (batch.empty()) {
      if (pending.empty()) {
        // Fully idle: park until a client pushes or the front stops. Waits
        // go through the governor's inbox class (and are recorded, so lulls
        // train the budget down) on the inbox's own consumer gate.
        submission s;
        bool got = false;
        gov.await(p.inbox.consumer_gate(), sched::gate_class::inbox, p.stats, [&] {
          got = p.inbox.try_pop(s);
          return got || leaving();
        });
        if (got) {
          batch.push_back(std::move(s));
          p.inbox.try_pop_all(batch);  // the rest of the burst, if any
        } else {
          drained_out = true;  // stopping/retiring, drained, no racing push
        }
      } else {
        // Completions outstanding but no new work: park on the inbox's
        // consumer gate, which producers wake on push and committing
        // workers wake through the completion hook — whichever condition
        // flips first resumes the loop.
        const std::uint64_t head = pending.front().serial;
        gov.await(p.inbox.consumer_gate(), sched::gate_class::inbox, p.stats, [&] {
          return !p.inbox.empty() ||
                 thr.committed_task.load_unstamped() >= head || leaving();
        });
        if (p.inbox.empty() && leaving()) drained_out = true;
      }
    }
    // --- install phase: publish serials, submit, queue the tickets.
    for (submission& s : batch) install_submission(t, s, pending);
    // --- complete phase: retire everything the frontier has passed.
    complete_passed(t, pending);
  }
  // Stopping and fully drained: quiesce the pipeline, then retire the
  // whole backlog — every issued ticket completes (callbacks included)
  // before stop() returns.
  th.drain();
  complete_passed(t, pending);
  assert(pending.empty());
}

void session_front::accumulate_stats(util::stat_block& total) const {
  for (const auto& p : pipes_) total.accumulate(p->stats);
  total.topo_grows += grows_.load(std::memory_order_relaxed);
  total.topo_shrinks += shrinks_.load(std::memory_order_relaxed);
  total.topo_fence_waits += fence_waits_.load(std::memory_order_relaxed);
  total.topo_reroutes += reroutes_.load(std::memory_order_relaxed);
}

void session_front::stop() {
  // Join the controller FIRST: a resize in flight always runs to completion
  // (fence cleared, retiring drivers joined), so after this join no resize
  // machinery moves again. Taking resize_mu_ below then serializes against
  // any concurrent manual session::resize().
  if (controller_ != nullptr) controller_->stop();
  {
    std::lock_guard<std::mutex> lk(resize_mu_);
    if (stopping_.exchange(true, std::memory_order_seq_cst)) return;
  }
  // Fence-parked pushers escape on the stopping flag and finish their push
  // (their pending-enqueue count keeps the drivers draining until it
  // lands).
  fence_gate_.wake_all();
  for (auto& p : pipes_) p->inbox.wake_all();
  // The drivers drain every already-admitted submission before honouring
  // the flag (pending_enqueues_ protocol in enqueue/driver_main), so after
  // the joins every issued ticket has been installed, drained and retired.
  for (auto& p : pipes_) {
    if (p->driver.joinable()) p->driver.join();
  }
  // The drivers are gone: release their read-path epoch slots so shutdown
  // reclamation never waits on a participant that can no longer unpin.
  for (auto& p : pipes_) rt_.epochs().unregister_participant(p->epoch_slot);
  // Unhook the commit frontier: the gates die with this front, and the
  // pipelines (which runtime::stop() drains next) must not wake freed
  // memory.
  for (unsigned t = 0; t < pipes_.size(); ++t) {
    rt_.threads_[t]->completion_hook.store(nullptr, std::memory_order_release);
  }
}

// ---------------------------------------------------------------------------
// runtime::open_session (lives here so runtime.cpp stays session-free)
// ---------------------------------------------------------------------------

session runtime::open_session() {
  std::lock_guard<std::mutex> lk(session_mu_);
  if (stopped_) throw std::logic_error("runtime already stopped");
  if (sessions_ == nullptr) sessions_ = std::make_unique<session_front>(*this);
  return session(*sessions_);
}

}  // namespace tlstm::core
