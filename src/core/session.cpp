// Session front-end implementation: per-pipeline driver threads draining
// bounded MPSC inboxes, ticket completion over the pipelines' wait gates.
#include "core/session.hpp"

#include <stdexcept>
#include <utility>

#include "core/runtime.hpp"

namespace tlstm::core {

// ---------------------------------------------------------------------------
// ticket
// ---------------------------------------------------------------------------

void ticket::wait() {
  if (st_ == nullptr) throw std::logic_error("ticket::wait on an empty ticket");
  detail::ticket_state& st = *st_;
  // Phase 1: wait for the driver to assign the commit serial (it wakes our
  // install gate right after the store).
  st.install_gate.await(*st.waits, [&] {
    return st.commit_serial.load(std::memory_order_acquire) != 0;
  });
  const std::uint64_t cs = st.commit_serial.load(std::memory_order_acquire);
  // Phase 2: park on the commit serial's slot gate — the committing worker
  // wakes exactly that gate (plus the thread gate) when the frontier passes
  // cs, so completion is a point-to-point wake, not a herd broadcast.
  st.thr->slot_for(cs).gate.await(*st.waits, [&] {
    return st.thr->committed_task.load_unstamped() >= cs;
  });
}

bool ticket::done() const noexcept {
  if (st_ == nullptr) return false;
  const std::uint64_t cs = st_->commit_serial.load(std::memory_order_acquire);
  return cs != 0 && st_->thr->committed_task.load_unstamped() >= cs;
}

// ---------------------------------------------------------------------------
// session
// ---------------------------------------------------------------------------

ticket session::submit(std::vector<task_fn> tasks) {
  return front_->enqueue(front_->route_next(), std::move(tasks));
}

ticket session::submit_single(task_fn fn) {
  std::vector<task_fn> one;
  one.push_back(std::move(fn));
  return submit(std::move(one));
}

ticket session::submit_keyed(std::uint64_t key, std::vector<task_fn> tasks) {
  return front_->enqueue(front_->route_key(key), std::move(tasks));
}

unsigned session::pipelines() const noexcept { return front_->pipelines(); }

// ---------------------------------------------------------------------------
// session_front
// ---------------------------------------------------------------------------

session_front::session_front(runtime& rt) : rt_(rt) {
  const unsigned n = rt.num_threads();
  pipes_.reserve(n);
  for (unsigned t = 0; t < n; ++t) {
    pipes_.push_back(std::make_unique<pipe>(rt.cfg().session_inbox_capacity));
  }
  for (unsigned t = 0; t < n; ++t) {
    pipes_[t]->driver = std::thread([this, t] { driver_main(t); });
  }
}

session_front::~session_front() { stop(); }

unsigned session_front::route_next() noexcept {
  return static_cast<unsigned>(rr_.fetch_add(1, std::memory_order_relaxed) %
                               pipes_.size());
}

unsigned session_front::route_key(std::uint64_t key) const noexcept {
  // splitmix64 finalizer — cheap avalanche so clustered keys spread.
  key += 0x9e3779b97f4a7c15ull;
  key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ull;
  key = (key ^ (key >> 27)) * 0x94d049bb133111ebull;
  key ^= key >> 31;
  return static_cast<unsigned>(key % pipes_.size());
}

void session_front::finish_enqueue() noexcept {
  pending_enqueues_.fetch_sub(1, std::memory_order_seq_cst);
  // The count reaching zero can be what releases the drivers' stop
  // predicate — and any driver may be the one parked on it.
  if (stopping_.load(std::memory_order_seq_cst)) {
    for (auto& p : pipes_) p->inbox.wake_all();
  }
}

ticket session_front::enqueue(unsigned pipe_idx, std::vector<task_fn> tasks) {
  if (tasks.empty()) throw std::invalid_argument("transaction needs >= 1 task");
  if (tasks.size() > rt_.cfg().spec_depth) {
    throw std::invalid_argument("transaction has more tasks than spec_depth");
  }
  // Dekker pairing with the drivers' stop predicate: the pending count is
  // raised *before* the stopping check (both seq_cst), so either this
  // enqueue observes stopping and backs out, or the drivers observe a
  // non-zero pending count and keep draining until the push lands.
  pending_enqueues_.fetch_add(1, std::memory_order_seq_cst);
  if (stopping_.load(std::memory_order_seq_cst)) {
    finish_enqueue();
    throw std::runtime_error("session front-end is stopping");
  }
  auto st = std::make_shared<detail::ticket_state>();
  st->thr = rt_.threads_[pipe_idx].get();
  st->waits = &rt_.cfg().waits;
  submission s{std::move(tasks), st};
  pipes_[pipe_idx]->inbox.push_wait(rt_.cfg().waits, std::move(s));
  finish_enqueue();
  return ticket(std::move(st));
}

void session_front::driver_main(unsigned t) {
  user_thread& th = rt_.thread(t);
  pipe& p = *pipes_[t];
  const sched::wait_params& waits = rt_.cfg().waits;
  submission s;
  // Honour the stop flag only once no enqueue is mid-push (see
  // pending_enqueues_): pop_wait keeps draining until the inbox is empty
  // AND no racing submission can still land in it.
  auto stopped = [&] {
    return stopping_.load(std::memory_order_seq_cst) &&
           pending_enqueues_.load(std::memory_order_seq_cst) == 0;
  };
  while (p.inbox.pop_wait(waits, s, stopped)) {
    // The driver is the pipeline's only submitter, so the commit-task's
    // serial is exactly the current high-water mark plus the task count.
    // Publish it before installing: once submit returns, the commit that
    // completes the transaction is guaranteed to wake the serial's slot
    // gate after this store, so a parked ticket cannot miss it.
    s.tk->commit_serial.store(th.submitted_serials() + s.tasks.size(),
                              std::memory_order_release);
    s.tk->install_gate.wake_all();
    th.submit(std::move(s.tasks));
    s = submission{};  // release the ticket ref promptly
  }
  // Stopping and fully drained: quiesce the pipeline so every issued
  // ticket completes before stop() returns.
  th.drain();
}

void session_front::stop() {
  if (stopping_.exchange(true, std::memory_order_seq_cst)) return;
  for (auto& p : pipes_) p->inbox.wake_all();
  // The drivers drain every already-admitted submission before honouring
  // the flag (pending_enqueues_ protocol in enqueue/driver_main), so after
  // the joins every issued ticket has been installed and drained.
  for (auto& p : pipes_) {
    if (p->driver.joinable()) p->driver.join();
  }
}

// ---------------------------------------------------------------------------
// runtime::open_session (lives here so runtime.cpp stays session-free)
// ---------------------------------------------------------------------------

session runtime::open_session() {
  std::lock_guard<std::mutex> lk(session_mu_);
  if (stopped_) throw std::logic_error("runtime already stopped");
  if (sessions_ == nullptr) sessions_ = std::make_unique<session_front>(*this);
  return session(*sessions_);
}

}  // namespace tlstm::core
