// Session front-end implementation: per-pipeline driver threads draining
// bounded MPSC inboxes in three phases — drain (pop every published cell),
// install (publish commit serials, submit), complete (retire tickets the
// commit frontier passed, running their callbacks). See DESIGN.md §8.4/§8.5.
#include "core/session.hpp"

#include <cassert>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "core/runtime.hpp"
#include "sched/backoff_ladder.hpp"
#include "stm/readpath.hpp"

namespace tlstm::core {

namespace {
/// Latency capture clock (config.capture_latency): monotonic nanoseconds.
/// Only read on session paths — submit, install, and the driver's complete
/// phase — never by workers.
std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

// ---------------------------------------------------------------------------
// ticket
// ---------------------------------------------------------------------------

void ticket::wait() {
  if (st_ == nullptr) throw std::logic_error("ticket::wait on an empty ticket");
  detail::ticket_state& st = *st_;
  // Single completion edge: the driver stores `completed` (release) after
  // the frontier passed the serial AND every callback ran, then wakes this
  // gate. Everything the wait touches lives in the shared ticket state, so
  // a wait racing (or following) runtime shutdown is safe — stop() retires
  // every issued ticket before the runtime dies.
  st.gate.await(st.waits, [&] {
    return st.completed.load(std::memory_order_acquire);
  });
  // Callback exceptions are never swallowed: the first one is rethrown by
  // every wait() on this ticket (written happens-before the completed
  // store).
  if (st.callback_error) std::rethrow_exception(st.callback_error);
}

bool ticket::done() const noexcept {
  return st_ != nullptr && st_->completed.load(std::memory_order_acquire);
}

void ticket::then(std::function<void()> fn) {
  if (st_ == nullptr) throw std::logic_error("ticket::then on an empty ticket");
  detail::ticket_state& st = *st_;
  {
    std::lock_guard<std::mutex> lk(st.cb_mu);
    if (!st.completing) {
      st.callbacks.push_back(std::move(fn));
      return;
    }
  }
  // The driver already claimed the callback list (the completion edge has
  // passed): run inline in the registering thread — still never a
  // committing worker — and let exceptions propagate to the caller.
  fn();
}

ticket_latency ticket::latency() const noexcept {
  ticket_latency out;
  if (st_ == nullptr) return out;
  // Acquire on the completion flag orders the relaxed stamp loads after a
  // completed ticket's stores; a racing read of an in-flight ticket just
  // sees the not-yet-reached points as 0.
  (void)st_->completed.load(std::memory_order_acquire);
  out.submit_ns = st_->t_submit_ns.load(std::memory_order_relaxed);
  out.install_ns = st_->t_install_ns.load(std::memory_order_relaxed);
  out.commit_ns = st_->t_commit_ns.load(std::memory_order_relaxed);
  out.callback_ns = st_->t_callback_ns.load(std::memory_order_relaxed);
  return out;
}

// ---------------------------------------------------------------------------
// session
// ---------------------------------------------------------------------------

ticket session::submit(std::vector<task_fn> tasks) {
  return front_->enqueue(front_->route_next(), std::move(tasks));
}

ticket session::submit_single(task_fn fn) {
  std::vector<task_fn> one;
  one.push_back(std::move(fn));
  return submit(std::move(one));
}

ticket session::submit_keyed(std::uint64_t key, std::vector<task_fn> tasks) {
  return front_->enqueue(front_->route_key(key), std::move(tasks));
}

ticket session::submit_read(std::vector<task_fn> tasks) {
  return front_->enqueue(front_->route_next(), std::move(tasks), /*read_only=*/true);
}

ticket session::submit_read_single(task_fn fn) {
  std::vector<task_fn> one;
  one.push_back(std::move(fn));
  return submit_read(std::move(one));
}

ticket session::submit_read_keyed(std::uint64_t key, std::vector<task_fn> tasks) {
  return front_->enqueue(front_->route_key(key), std::move(tasks), /*read_only=*/true);
}

std::vector<ticket> session::submit_batch(std::vector<std::vector<task_fn>> txs) {
  return front_->enqueue_batch(front_->route_next(), std::move(txs));
}

std::vector<ticket> session::submit_batch_keyed(std::uint64_t key,
                                                std::vector<std::vector<task_fn>> txs) {
  return front_->enqueue_batch(front_->route_key(key), std::move(txs));
}

unsigned session::pipelines() const noexcept { return front_->pipelines(); }

unsigned session::pipeline_for_key(std::uint64_t key) const noexcept {
  return front_->route_key(key);
}

// ---------------------------------------------------------------------------
// session_front
// ---------------------------------------------------------------------------

session_front::pipe::pipe(runtime& rt, unsigned t)
    : inbox(rt.cfg().session_inbox_capacity),
      ro_reclaimer(rt.epochs()),
      // Stream disjoint from the worker rngs (seeded 0xfeedface): drivers
      // only pace backoff with it, but keep the streams distinct anyway.
      rng(0xbead5e55ULL, t),
      epoch_slot(rt.epochs().register_participant()),
      reader(std::make_unique<stm::snapshot_reader<stm::swiss_frontier_adapter>>(
          stm::swiss_frontier_adapter{&rt.table()}, rt.commit_ts())) {}

session_front::session_front(runtime& rt) : rt_(rt) {
  const unsigned n = rt.num_threads();
  pipes_.reserve(n);
  for (unsigned t = 0; t < n; ++t) {
    pipes_.push_back(std::make_unique<pipe>(rt, t));
  }
  // Hook the commit frontier to the drivers' park gates *before* any driver
  // (and hence any commit this front can cause) exists: committing workers
  // wake the consumer gate so a driver parked for completions never sleeps
  // through a frontier advance.
  for (unsigned t = 0; t < n; ++t) {
    rt.threads_[t]->completion_hook.store(&pipes_[t]->inbox.consumer_gate(),
                                          std::memory_order_release);
  }
  for (unsigned t = 0; t < n; ++t) {
    pipes_[t]->driver = std::thread([this, t] { driver_main(t); });
  }
}

session_front::~session_front() { stop(); }

unsigned session_front::route_next() noexcept {
  const std::uint64_t i = rr_.fetch_add(1, std::memory_order_relaxed);
  // Wrap fairness: fold the counter back into a small congruent value long
  // before u64 overflow. At the wrap the raw modulo sequence would jump for
  // non-power-of-two pipeline counts (2^64 mod n != 0), breaking the
  // round-robin invariant; folding to i mod n preserves the phase exactly.
  // Any fetch_add racing the fold either lands before the CAS (its value is
  // part of `cur` and survives the fold mod n) or retries it.
  constexpr std::uint64_t fold_at = std::uint64_t{1} << 62;
  if (i >= fold_at) {
    std::uint64_t cur = rr_.load(std::memory_order_relaxed);
    while (cur >= fold_at &&
           !rr_.compare_exchange_weak(cur, cur % pipes_.size(),
                                      std::memory_order_relaxed)) {
    }
  }
  return static_cast<unsigned>(i % pipes_.size());
}

unsigned session_front::route_key(std::uint64_t key) const noexcept {
  // The public hash (session.hpp) so offline checkers reproduce placement.
  return static_cast<unsigned>(session_route_hash(key) % pipes_.size());
}

void session_front::validate_tx(const std::vector<task_fn>& tasks) const {
  if (tasks.empty()) throw std::invalid_argument("transaction needs >= 1 task");
  if (tasks.size() > rt_.cfg().spec_depth) {
    throw std::invalid_argument("transaction has more tasks than spec_depth");
  }
}

std::shared_ptr<detail::ticket_state> session_front::make_ticket_state() const {
  auto st = std::make_shared<detail::ticket_state>();
  st->waits = rt_.cfg().waits;  // by value: outlives the runtime
  if (rt_.cfg().capture_latency) {
    // Submit capture point (§9): stamped before the inbox push, so
    // submit→install includes backpressure parking and driver drain delay.
    st->t_submit_ns.store(now_ns(), std::memory_order_relaxed);
  }
  return st;
}

void session_front::begin_enqueue() {
  // Dekker pairing with the drivers' stop predicate: the pending count is
  // raised *before* the stopping check (both seq_cst), so either this
  // enqueue observes stopping and backs out, or the drivers observe a
  // non-zero pending count and keep draining until the push lands.
  pending_enqueues_.fetch_add(1, std::memory_order_seq_cst);
  if (stopping_.load(std::memory_order_seq_cst)) {
    finish_enqueue();
    throw std::runtime_error("session front-end is stopping");
  }
}

void session_front::finish_enqueue() noexcept {
  pending_enqueues_.fetch_sub(1, std::memory_order_seq_cst);
  // The count reaching zero can be what releases the drivers' stop
  // predicate — and any driver may be the one parked on it.
  if (stopping_.load(std::memory_order_seq_cst)) {
    for (auto& p : pipes_) p->inbox.wake_all();
  }
}

ticket session_front::enqueue(unsigned pipe_idx, std::vector<task_fn> tasks,
                              bool read_only) {
  validate_tx(tasks);
  begin_enqueue();
  // Balance begin_enqueue on EVERY exit, exceptions included (e.g. an
  // allocation failure building the submission): a leaked pending count
  // would make the drivers' stop predicate unsatisfiable forever.
  struct balance {
    session_front& f;
    ~balance() { f.finish_enqueue(); }
  } guard{*this};
  auto st = make_ticket_state();
  submission s{detail::sub_tx{std::move(tasks), st, read_only}};
  // Backpressure parks under the governed inbox budget (clients have no
  // stat block, so the outcome is not recorded — drivers train the class).
  pipes_[pipe_idx]->inbox.push_wait(rt_.governor().params(sched::gate_class::inbox),
                                    std::move(s));
  return ticket(std::move(st));
}

std::vector<ticket> session_front::enqueue_batch(unsigned pipe_idx,
                                                 std::vector<std::vector<task_fn>> txs) {
  if (txs.empty()) throw std::invalid_argument("batch needs >= 1 transaction");
  // All-or-nothing validation: reject the whole batch before any enqueue
  // side effect, so a bad transaction in the middle cannot leave a prefix
  // in flight.
  for (const auto& tasks : txs) validate_tx(tasks);
  begin_enqueue();
  struct balance {
    session_front& f;
    ~balance() { f.finish_enqueue(); }
  } guard{*this};
  std::vector<ticket> out;
  out.reserve(txs.size());
  const std::size_t chunk_max = rt_.cfg().session_batch_max;
  std::size_t i = 0;
  while (i < txs.size()) {
    const std::size_t n = std::min(chunk_max, txs.size() - i);
    std::vector<detail::sub_tx> chunk;
    chunk.reserve(n);
    for (std::size_t k = 0; k < n; ++k, ++i) {
      auto st = make_ticket_state();
      out.push_back(ticket(st));
      chunk.push_back(detail::sub_tx{std::move(txs[i]), std::move(st)});
    }
    submission s{std::move(chunk)};
    pipes_[pipe_idx]->inbox.push_wait(rt_.governor().params(sched::gate_class::inbox),
                                      std::move(s));
  }
  return out;
}

void session_front::install_submission(unsigned t, submission& s,
                                       std::deque<pending_ticket>& pending) {
  user_thread& th = rt_.thread(t);
  util::stat_block& st = pipes_[t]->stats;
  st.session_batches++;
  auto for_each_tx = [&](auto&& fn) {
    if (auto* one = std::get_if<detail::sub_tx>(&s.body)) {
      fn(*one);
    } else {
      for (detail::sub_tx& tx : std::get<std::vector<detail::sub_tx>>(s.body)) fn(tx);
    }
  };
  // Read-only fast path (DESIGN.md §10): serve declared reads inline at
  // the committed frontier before any serial assignment. A served
  // transaction completes right here (ticket retired, commit_serial stays
  // 0); one that conflicted out or turned out to write keeps its ticket
  // and joins the full path below.
  const bool fast = rt_.cfg().read_path;
  for_each_tx([&](detail::sub_tx& tx) {
    st.session_batch_txs++;
    if (fast && tx.read_only && execute_read(t, tx)) tx.tk.reset();
  });
  // One high-water read covers the whole cell (the driver is the pipeline's
  // only submitter, so serial assignment is deterministic from here), and
  // every commit serial is published before the first submit: a done()/
  // diagnostic probe racing the batch observes its serial even while an
  // earlier transaction's submit is parked on slot backpressure.
  std::uint64_t serial = th.submitted_serials();
  for_each_tx([&](detail::sub_tx& tx) {
    if (tx.tk == nullptr) return;  // retired on the read fast path
    serial += tx.tasks.size();
    tx.tk->commit_serial.store(serial, std::memory_order_release);
  });
  const bool capture = rt_.cfg().capture_latency;
  for_each_tx([&](detail::sub_tx& tx) {
    if (tx.tk == nullptr) return;  // retired on the read fast path
    const std::uint64_t cs = tx.tk->commit_serial.load(std::memory_order_relaxed);
    if (capture) {
      // Install capture point (§9): the hand-off into the pipeline. The
      // submit below may itself park on slot backpressure — that belongs
      // to the install→commit phase (it is pipeline occupancy, not inbox
      // queueing), so the stamp precedes it.
      tx.tk->t_install_ns.store(now_ns(), std::memory_order_relaxed);
    }
    th.submit(std::move(tx.tasks));
    pending.push_back(pending_ticket{cs, std::move(tx.tk)});
  });
}

bool session_front::execute_read(unsigned t, detail::sub_tx& tx) {
  pipe& p = *pipes_[t];
  util::stat_block& st = p.stats;
  const config& cfg = rt_.cfg();
  if (cfg.capture_latency) {
    // Install capture point (§9): for a fast-path read, "install" is the
    // start of inline execution. On fallback the full path re-stamps it —
    // a later value, so the stamps stay monotone either way.
    tx.tk->t_install_ns.store(now_ns(), std::memory_order_relaxed);
  }
  // The env the read closures run against: the pipe's dummy slot (serial 0)
  // with the frontier validator switched in — task_ctx routes every
  // transactional op accordingly (core/task.cpp).
  task_env env{rt_, *rt_.threads_[t], p.ro_slot, p.ro_clock,
               st,  p.ro_reclaimer,   p.reader.get()};
  // Abandoned attempts undo their allocations (the abort-path contract of
  // access_logs) and drop everything else.
  auto unwind = [&] {
    for (const stm::mm_action& a : p.ro_slot.logs.alloc_undo) {
      p.ro_reclaimer.retire(a.obj, a.fn, a.ctx);
    }
    p.ro_slot.logs.clear_for_restart();
  };
  for (unsigned attempt = 1; attempt <= cfg.read_retry_cap; ++attempt) {
    // Pin the reclamation epoch across the attempt: structure reads may
    // chase pointers a concurrent committer just retired.
    rt_.epochs().pin(p.epoch_slot);
    p.reader->begin();
    p.ro_slot.ops_reported = 0;
    try {
      for (task_fn& fn : tx.tasks) {
        task_ctx ctx(env);
        fn(ctx);
      }
      // The commit point of a read-only transaction: prove every logged
      // read still current at the final frontier. No stripe was ever
      // owned, so success publishes nothing — it only completes the
      // ticket.
      if (!p.reader->revalidate()) throw stm::read_conflict{};
      rt_.epochs().unpin(p.epoch_slot);
      for (const stm::mm_action& a : p.ro_slot.logs.commit_retire) {
        p.ro_reclaimer.retire(a.obj, a.fn, a.ctx);
      }
      p.ro_slot.logs.clear_for_restart();
      st.user_ops += p.ro_slot.ops_reported;
      st.readpath_hits++;
      // Commit-observed + callback stamps and the completion edge come
      // from the shared completion path (distinct interpretation for
      // reads: commit = snapshot validated, DESIGN.md §10).
      complete_ticket(*tx.tk, st);
      return true;
    } catch (const stm::read_conflict&) {
      rt_.epochs().unpin(p.epoch_slot);
      unwind();
      st.readpath_retries++;
      if (attempt < cfg.read_retry_cap) {
        sched::ladder_pause(cfg.restart_backoff, attempt, cfg.backoff_max_shift,
                            p.rng);
      }
    } catch (const stm::read_needs_write&) {
      rt_.epochs().unpin(p.epoch_slot);
      unwind();
      break;  // declared read-only but wrote: full path, immediately
    }
  }
  st.readpath_fallbacks++;
  return false;
}

void session_front::complete_ticket(detail::ticket_state& tk, util::stat_block& st) {
  const bool capture = rt_.cfg().capture_latency;
  if (capture) {
    // Commit-observed capture point (§9): the driver saw the commit
    // frontier pass this serial. The true commit happened up to one
    // completion-hook wake earlier; that observation delay is part of what
    // a session client experiences, so it is deliberately included here
    // rather than stamped by the committing worker.
    tk.t_commit_ns.store(now_ns(), std::memory_order_relaxed);
  }
  std::vector<std::function<void()>> cbs;
  {
    std::lock_guard<std::mutex> lk(tk.cb_mu);
    tk.completing = true;  // late then() registrations now run inline
    cbs.swap(tk.callbacks);
  }
  std::exception_ptr err;
  for (auto& cb : cbs) {
    st.session_callbacks++;
    try {
      cb();
    } catch (...) {
      // Never swallowed: counted, and the first one is rethrown by every
      // wait() on this ticket.
      st.session_callback_errors++;
      if (!err) err = std::current_exception();
    }
  }
  if (capture) {
    // Callback capture point (§9): callbacks ran, the completion edge is
    // about to publish. Stamped before the release-store so a waiter that
    // observes `completed` always reads a fully stamped record.
    tk.t_callback_ns.store(now_ns(), std::memory_order_relaxed);
    st.latency_samples++;
  }
  tk.callback_error = err;  // published by the completed release-store
  tk.completed.store(true, std::memory_order_release);
  tk.gate.wake_all();
}

void session_front::complete_passed(unsigned t, std::deque<pending_ticket>& pending) {
  const thread_state& thr = *rt_.threads_[t];
  const std::uint64_t frontier = thr.committed_task.load_unstamped();
  while (!pending.empty() && pending.front().serial <= frontier) {
    complete_ticket(*pending.front().tk, pipes_[t]->stats);
    pending.pop_front();
  }
}

void session_front::driver_main(unsigned t) {
  user_thread& th = rt_.thread(t);
  thread_state& thr = *rt_.threads_[t];
  pipe& p = *pipes_[t];
  sched::wait_governor& gov = rt_.governor();
  // Honour the stop flag only once no enqueue is mid-push (see
  // pending_enqueues_): the drain keeps going until the inbox is empty AND
  // no racing submission can still land in it.
  auto stopped = [&] {
    return stopping_.load(std::memory_order_seq_cst) &&
           pending_enqueues_.load(std::memory_order_seq_cst) == 0;
  };
  std::vector<submission> batch;
  std::deque<pending_ticket> pending;
  bool drained_out = false;
  while (!drained_out) {
    // --- drain phase: take every published inbox cell without blocking.
    batch.clear();
    p.inbox.try_pop_all(batch);
    if (batch.empty()) {
      if (pending.empty()) {
        // Fully idle: park until a client pushes or the front stops. Waits
        // go through the governor's inbox class (and are recorded, so lulls
        // train the budget down) on the inbox's own consumer gate.
        submission s;
        bool got = false;
        gov.await(p.inbox.consumer_gate(), sched::gate_class::inbox, p.stats, [&] {
          got = p.inbox.try_pop(s);
          return got || stopped();
        });
        if (got) {
          batch.push_back(std::move(s));
          p.inbox.try_pop_all(batch);  // the rest of the burst, if any
        } else {
          drained_out = true;  // stopping, drained, no racing push
        }
      } else {
        // Completions outstanding but no new work: park on the inbox's
        // consumer gate, which producers wake on push and committing
        // workers wake through the completion hook — whichever condition
        // flips first resumes the loop.
        const std::uint64_t head = pending.front().serial;
        gov.await(p.inbox.consumer_gate(), sched::gate_class::inbox, p.stats, [&] {
          return !p.inbox.empty() ||
                 thr.committed_task.load_unstamped() >= head || stopped();
        });
        if (p.inbox.empty() && stopped()) drained_out = true;
      }
    }
    // --- install phase: publish serials, submit, queue the tickets.
    for (submission& s : batch) install_submission(t, s, pending);
    // --- complete phase: retire everything the frontier has passed.
    complete_passed(t, pending);
  }
  // Stopping and fully drained: quiesce the pipeline, then retire the
  // whole backlog — every issued ticket completes (callbacks included)
  // before stop() returns.
  th.drain();
  complete_passed(t, pending);
  assert(pending.empty());
}

void session_front::accumulate_stats(util::stat_block& total) const {
  for (const auto& p : pipes_) total.accumulate(p->stats);
}

void session_front::stop() {
  if (stopping_.exchange(true, std::memory_order_seq_cst)) return;
  for (auto& p : pipes_) p->inbox.wake_all();
  // The drivers drain every already-admitted submission before honouring
  // the flag (pending_enqueues_ protocol in enqueue/driver_main), so after
  // the joins every issued ticket has been installed, drained and retired.
  for (auto& p : pipes_) {
    if (p->driver.joinable()) p->driver.join();
  }
  // The drivers are gone: release their read-path epoch slots so shutdown
  // reclamation never waits on a participant that can no longer unpin.
  for (auto& p : pipes_) rt_.epochs().unregister_participant(p->epoch_slot);
  // Unhook the commit frontier: the gates die with this front, and the
  // pipelines (which runtime::stop() drains next) must not wake freed
  // memory.
  for (unsigned t = 0; t < pipes_.size(); ++t) {
    rt_.threads_[t]->completion_hook.store(nullptr, std::memory_order_release);
  }
}

// ---------------------------------------------------------------------------
// runtime::open_session (lives here so runtime.cpp stays session-free)
// ---------------------------------------------------------------------------

session runtime::open_session() {
  std::lock_guard<std::mutex> lk(session_mu_);
  if (stopped_) throw std::logic_error("runtime already stopped");
  if (sessions_ == nullptr) sessions_ = std::make_unique<session_front>(*this);
  return session(*sessions_);
}

}  // namespace tlstm::core
