// Typed convenience layer over the word-granular transactional API.
//
// Workload code is written once against a generic `Ctx` (either
// core::task_ctx or stm::swiss_thread — both expose read/write/work/
// log_alloc_undo/log_commit_retire), using:
//
//   tm_var<T>     a transactional cell for a trivially-copyable T (<= 8 B)
//   tm_pool<T>    type-stable transactional allocation with abort-undo and
//                 grace-period frees
//   tm_read/tm_write   free functions for typed access to raw fields
#pragma once

#include <atomic>
#include <bit>
#include <cstring>
#include <type_traits>
#include <utility>

#include "stm/lock_table.hpp"
#include "util/epoch.hpp"

namespace tlstm {

template <typename T>
concept tm_word_compatible =
    std::is_trivially_copyable_v<T> && sizeof(T) <= sizeof(stm::word);

namespace detail {
template <typename T>
stm::word to_word(const T& v) noexcept {
  stm::word w = 0;
  std::memcpy(&w, &v, sizeof(T));
  return w;
}
template <typename T>
T from_word(stm::word w) noexcept {
  T v;
  std::memcpy(&v, &w, sizeof(T));
  return v;
}
}  // namespace detail

/// A transactional variable. Storage is one aligned word; all access goes
/// through a transaction context. `init()` is for quiesced (single-threaded)
/// setup only.
template <tm_word_compatible T>
class tm_var {
 public:
  // init/peek go through relaxed atomic_ref: a doomed speculative task may
  // still be reading a recycled node while its new owner re-initializes it
  // (type-stability, DESIGN.md §4.4) — the stale value is garbage to the
  // reader (validation kills it), but the access itself must stay defined.
  tm_var() noexcept { init(T{}); }
  explicit tm_var(T v) noexcept { init(v); }

  void init(T v) noexcept {
    std::atomic_ref<stm::word>(storage_).store(detail::to_word(v),
                                               std::memory_order_relaxed);
  }
  T unsafe_peek() const noexcept {
    // atomic_ref over a const-qualified type is only valid from C++26;
    // cast away const for the ref (the load itself never writes).
    return detail::from_word<T>(
        std::atomic_ref<stm::word>(const_cast<stm::word&>(storage_))
            .load(std::memory_order_relaxed));
  }

  template <typename Ctx>
  T get(Ctx& ctx) const {
    return detail::from_word<T>(ctx.read(&storage_));
  }
  template <typename Ctx>
  void set(Ctx& ctx, T v) {
    ctx.write(&storage_, detail::to_word(v));
  }

 private:
  // No default member initializer: a plain zeroing write during placement
  // new would race the stale readers described above; both constructors
  // initialize through the atomic init() instead.
  alignas(sizeof(stm::word)) stm::word storage_;
};

/// Composable atomic scope — the uniform way to write transactional library
/// functions that work under both runtimes (paper §2 nesting, flattened):
///
///   * on a stm::swiss_thread outside a transaction it opens one;
///   * on a stm::swiss_thread inside a transaction it merges into it;
///   * on a core::task_ctx (always inside a user-transaction by
///     construction) it simply runs inline.
///
/// In every case the body observes flat-nesting semantics: one atomic
/// scope, visibility at the outermost commit, aborts restart the whole
/// flattened transaction.
template <typename Ctx, typename Fn>
void atomic_scope(Ctx& ctx, Fn&& fn) {
  if constexpr (requires { ctx.run_transaction(std::forward<Fn>(fn)); }) {
    ctx.run_transaction(std::forward<Fn>(fn));
  } else {
    ctx.stats().tx_nested++;
    fn(ctx);
  }
}

/// Typed access to a raw word field (for arrays of words).
template <typename Ctx, tm_word_compatible T = stm::word>
T tm_read(Ctx& ctx, const stm::word* addr) {
  return detail::from_word<T>(ctx.read(addr));
}
template <typename Ctx, tm_word_compatible T = stm::word>
void tm_write(Ctx& ctx, stm::word* addr, T v) {
  ctx.write(addr, detail::to_word(v));
}

/// Transactional allocator facade over a type-stable pool. Allocation inside
/// a transaction is undone if the transaction aborts; destruction inside a
/// transaction happens only if it commits, after an epoch grace period.
///
/// Lifetime: the pool must outlive every runtime whose transactions touched
/// it — deferred frees referencing the pool are flushed when the runtime's
/// worker reclaimers are destroyed. Declare pools before the runtime.
template <typename T>
class tm_pool {
 public:
  explicit tm_pool(std::size_t chunk_objects = 1024) : pool_(chunk_objects) {}

  /// Allocates and constructs inside the transaction. The object's fields
  /// may be initialized non-transactionally before the first transactional
  /// publication of its address.
  template <typename Ctx, typename... Args>
  T* create(Ctx& ctx, Args&&... args) {
    T* p = pool_.construct(std::forward<Args>(args)...);
    ctx.log_alloc_undo(p, &util::object_pool<T>::pool_deleter, &pool_);
    return p;
  }

  /// Transactionally frees: recycled only if the transaction commits, and
  /// only after every task live at commit time has finished.
  template <typename Ctx>
  void destroy(Ctx& ctx, T* p) {
    ctx.log_commit_retire(p, &util::object_pool<T>::pool_deleter, &pool_);
  }

  /// Non-transactional create/destroy for quiesced setup and teardown.
  template <typename... Args>
  T* create_unsafe(Args&&... args) {
    return pool_.construct(std::forward<Args>(args)...);
  }
  void destroy_unsafe(T* p) {
    p->~T();
    pool_.deallocate_raw(p);
  }

  util::object_pool<T>& raw_pool() noexcept { return pool_; }

 private:
  util::object_pool<T> pool_;
};

}  // namespace tlstm
