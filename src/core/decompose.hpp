// Task-decomposition library: the standard loop- and procedure-speculation
// patterns the paper cites as the input to the unified runtime (§3.3: "from
// loop iteration speculation (e.g. spec-DOALL and spec-DOACROSS) to
// procedure fall-through speculation, at either compile-time and/or
// execution-time"). The paper treats decomposition as orthogonal to the
// runtime; this header is the runtime-side realization a compiler pass (or a
// programmer) would target:
//
//   split_range      balanced contiguous chunking of an iteration space
//   spec_doall       one transaction, one task per chunk, no carried state
//   spec_reduce      spec_doall plus a commutative-combine of task partials
//   spec_doacross    pipelined chunks with a loop-carried value, forwarded
//                    task-to-task through the speculative read path
//   spec_stages      procedure fall-through: a sequence of dependent stages
//                    run as one speculatively-parallel transaction
//
// All helpers preserve the sequential semantics of the loop they decompose —
// the runtime detects and repairs any speculation violation — so they are
// safe on *any* body; they only pay off when iterations rarely conflict.
//
// Re-execution caveat (standard TM rule): bodies may run several times and
// must be effect-free outside transactional state.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/api.hpp"
#include "core/runtime.hpp"

namespace tlstm::core {

/// One contiguous chunk of an iteration space.
struct iter_range {
  std::uint64_t begin = 0;  ///< first iteration
  std::uint64_t end = 0;    ///< one past the last iteration

  std::uint64_t size() const noexcept { return end - begin; }
  friend bool operator==(const iter_range&, const iter_range&) = default;
};

/// Splits [begin, end) into at most `chunks` contiguous, near-equal pieces
/// (sizes differ by at most one, larger chunks first). Returns fewer pieces
/// when the range has fewer iterations than `chunks`; never returns an empty
/// chunk. An empty range yields no chunks.
inline std::vector<iter_range> split_range(std::uint64_t begin, std::uint64_t end,
                                           unsigned chunks) {
  std::vector<iter_range> out;
  if (end <= begin || chunks == 0) return out;
  const std::uint64_t n = end - begin;
  const std::uint64_t k = std::min<std::uint64_t>(chunks, n);
  const std::uint64_t base = n / k;
  const std::uint64_t extra = n % k;
  std::uint64_t at = begin;
  for (std::uint64_t i = 0; i < k; ++i) {
    const std::uint64_t len = base + (i < extra ? 1 : 0);
    out.push_back({at, at + len});
    at += len;
  }
  return out;
}

/// spec-DOALL: runs `body(ctx, i)` for every i in [begin, end) as one
/// user-transaction of up to `tasks` speculative tasks (clamped to the
/// runtime's spec_depth), then drains. Iterations carry no loop state;
/// cross-iteration conflicts through shared transactional memory are
/// detected and repaired by the runtime.
template <typename Body>
void spec_doall(user_thread& th, std::uint64_t begin, std::uint64_t end,
                unsigned tasks, Body body) {
  const auto chunks = split_range(begin, end, std::min(tasks, th.spec_depth()));
  if (chunks.empty()) return;
  std::vector<task_fn> fns;
  fns.reserve(chunks.size());
  for (const iter_range r : chunks) {
    fns.push_back([r, body](task_ctx& ctx) {
      for (std::uint64_t i = r.begin; i < r.end; ++i) body(ctx, i);
    });
  }
  th.execute(std::move(fns));
}

/// spec-DOALL + reduction: every task folds its chunk into a private
/// accumulator with `map` (acc = reduce(acc, map(ctx, i))), publishes the
/// partial through transactional memory, and the commit-task combines the
/// partials with `reduce` in chunk order. Returns the final value after the
/// transaction commits.
///
/// `reduce` must be associative for the decomposition to equal the
/// sequential fold; commutativity is not required (partials combine in
/// order).
template <tm_word_compatible T, typename Map, typename Reduce>
T spec_reduce(user_thread& th, std::uint64_t begin, std::uint64_t end,
              unsigned tasks, T init, Map map, Reduce reduce) {
  // The reduce transaction needs one task slot for the combine when more
  // than one chunk exists, so cap chunk count at depth - 1 in that case.
  const unsigned depth = th.spec_depth();
  unsigned want = std::min(tasks, depth);
  auto chunks = split_range(begin, end, want);
  if (chunks.size() > 1 && chunks.size() + 1 > depth) {
    chunks = split_range(begin, end, depth - 1);
  }
  if (chunks.empty()) return init;

  // Partials and the result flow through transactional cells: a re-executed
  // task overwrites its slot, and the combine task's speculative reads of
  // the slots are validated like any other TLS value forwarding.
  auto partials = std::make_shared<std::vector<tm_var<T>>>(chunks.size());
  auto result = std::make_shared<tm_var<T>>(init);

  std::vector<task_fn> fns;
  fns.reserve(chunks.size() + 1);
  const std::size_t n_parts = chunks.size();
  for (std::size_t c = 0; c < n_parts; ++c) {
    const iter_range r = chunks[c];
    if (n_parts == 1) {
      // Single chunk (including spec_depth == 1): fold and publish the
      // result in one task, no separate combine.
      fns.push_back([r, result, init, map, reduce](task_ctx& ctx) {
        T acc = init;
        for (std::uint64_t i = r.begin; i < r.end; ++i) acc = reduce(acc, map(ctx, i));
        result->set(ctx, acc);
      });
    } else {
      fns.push_back([r, c, partials, init, map, reduce](task_ctx& ctx) {
        T acc = init;
        for (std::uint64_t i = r.begin; i < r.end; ++i) acc = reduce(acc, map(ctx, i));
        (*partials)[c].set(ctx, acc);
      });
    }
  }
  if (n_parts > 1) {
    fns.push_back([n_parts, partials, result, init, reduce](task_ctx& ctx) {
      T acc = init;
      for (std::size_t c = 0; c < n_parts; ++c) {
        acc = reduce(acc, (*partials)[c].get(ctx));
      }
      result->set(ctx, acc);
    });
  }
  th.execute(std::move(fns));
  return result->unsafe_peek();
}

/// spec-DOACROSS: a loop with a carried value. `body(ctx, i, carry) -> carry`
/// runs sequentially inside each chunk; across chunks the carry is forwarded
/// through transactional cells, so task k+1's speculative read of task k's
/// carry is exactly the TLS read-from-past path (paper Alg. 1 lines 8-15).
/// Returns the carry after the last iteration.
template <tm_word_compatible T, typename Body>
T spec_doacross(user_thread& th, std::uint64_t begin, std::uint64_t end,
                unsigned tasks, T carry_init, Body body) {
  const auto chunks = split_range(begin, end, std::min(tasks, th.spec_depth()));
  if (chunks.empty()) return carry_init;

  auto carries = std::make_shared<std::vector<tm_var<T>>>(chunks.size());
  std::vector<task_fn> fns;
  fns.reserve(chunks.size());
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    const iter_range r = chunks[c];
    fns.push_back([r, c, carries, carry_init, body](task_ctx& ctx) {
      T carry = c == 0 ? carry_init : (*carries)[c - 1].get(ctx);
      for (std::uint64_t i = r.begin; i < r.end; ++i) carry = body(ctx, i, carry);
      (*carries)[c].set(ctx, carry);
    });
  }
  th.execute(std::move(fns));
  return carries->back().unsafe_peek();
}

/// Procedure fall-through speculation: runs `stages` (a call and its
/// continuations) as one user-transaction, each stage a speculative task.
/// Later stages execute optimistically before earlier ones finish; data
/// handed between stages through transactional memory is value-forwarded
/// and validated by the runtime.
inline void spec_stages(user_thread& th, std::vector<task_fn> stages) {
  th.execute(std::move(stages));
}

}  // namespace tlstm::core
