// Transactional operations of TLSTM — paper Algorithms 1 and 2 (read-word,
// write-word) plus the timestamp-extension and periodic-validation
// machinery. Validate-task and cm-should-abort moved to core/commit.cpp and
// core/contention.cpp; everything here operates on task_env, the narrow
// internal interface behind the user-facing task_ctx.
#include <cstdint>

#include "core/commit.hpp"
#include "core/contention.hpp"
#include "core/runtime.hpp"
#include "core/task.hpp"
#include "core/thread_state.hpp"
#include "stm/readpath.hpp"
#include "util/spin.hpp"

namespace tlstm::core {

namespace {
constexpr unsigned read_retry_cap = 4096;   // version double-check retries
constexpr unsigned chain_hop_cap = 4096;    // defensive bound on chain walks
}  // namespace

void runtime::validate_now(task_env& env) {
  env.check_safepoint();
  if (!validate_task(env.thr, env.slot, env.clock, env.stats, cfg_.costs) ||
      !task_extend(env)) {
    env.thr.raise_fence(env.serial(), env.clock);
    env.stats.abort_validation++;
    throw stm::tx_abort{stm::tx_abort::reason::validation};
  }
  env.slot.last_writer = env.thr.completed_writer.load_unstamped();
}

void runtime::maybe_periodic_validation(task_env& env) {
  const unsigned period = cfg_.validate_every_n_reads;
  if (period != 0 && ++env.slot.reads_since_validation >= period) {
    env.slot.reads_since_validation = 0;
    validate_now(env);
  }
}

// ---------------------------------------------------------------------------
// task_env / task_ctx forwarding surface
// ---------------------------------------------------------------------------

void task_env::check_safepoint() const {
  if (readpath != nullptr) return;  // serial 0 is never fenced (DESIGN.md §10)
  if (thr.fence_covers_unstamped(serial())) {
    throw stm::tx_abort{stm::tx_abort::reason::fence};
  }
}

stm::word task_ctx::read(const stm::word* addr) {
  if (env_.readpath != nullptr) {
    // Read-only fast path: invisible timestamped read against the committed
    // frontier — no slot, no stripe ownership, no fence polls.
    env_.stats.reads_committed++;
    return env_.readpath->read(addr);
  }
  return env_.rt.task_read(env_, addr);
}

void task_ctx::write(stm::word* addr, stm::word value) {
  if (env_.readpath != nullptr) {
    // The closure lied about being read-only: abandon the attempt, the
    // driver re-runs it down the full task path (readpath_fallbacks).
    throw stm::read_needs_write{};
  }
  env_.rt.task_write(env_, addr, value);
}

void task_ctx::work(std::uint64_t n) noexcept {
  env_.clock.advance(n * env_.rt.cfg().costs.user_work_unit);
}

void task_ctx::abort_self() {
  if (env_.readpath != nullptr) {
    // No fence to raise — a fast-path read owns no serial. Retrying the
    // snapshot is the read-only meaning of "restart me".
    throw stm::read_conflict{};
  }
  env_.thr.raise_fence(serial(), env_.clock);
  throw stm::tx_abort{stm::tx_abort::reason::explicit_abort};
}

void task_ctx::log_alloc_undo(void* obj, util::reclaimer::deleter_fn fn, void* ctx) {
  env_.slot.logs.alloc_undo.push_back({obj, fn, ctx});
}
void task_ctx::log_commit_retire(void* obj, util::reclaimer::deleter_fn fn, void* ctx) {
  env_.slot.logs.commit_retire.push_back({obj, fn, ctx});
}

void task_ctx::validate() {
  if (env_.readpath != nullptr) {
    if (!env_.readpath->revalidate()) throw stm::read_conflict{};
    return;
  }
  env_.rt.validate_now(env_);
}

// ---------------------------------------------------------------------------
// read-word (paper Alg. 1, lines 5-16)
// ---------------------------------------------------------------------------

stm::word runtime::task_read(task_env& env, const stm::word* addr) {
  env.check_safepoint();
  maybe_periodic_validation(env);
  thread_state& thr = env.thr;
  task_slot& slot = env.slot;
  slot.karma.store(slot.karma.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
  vt::worker_clock& clk = env.clock;
  const std::uint64_t my_serial = env.serial();
  stm::lock_pair& pair = table_.for_addr(addr);
  util::backoff bo;

  for (;;) {
    stm::write_entry* head = pair.w_lock.load(clk);
    if (head == nullptr || head->ptid() != thr.ptid) {
      // Unlocked, or locked by another user-thread: SwissTM committed read —
      // other threads' speculative values are invisible (paper line 16).
      return task_read_committed(env, addr, pair);
    }

    // Stripe is write-locked by our own user-thread: find the newest entry
    // for this address with serial <= ours (paper lines 8-9, address-refined).
    stm::write_entry* best = nullptr;
    bool stale = false;
    unsigned hops = 0;
    for (stm::write_entry* e = head; e != nullptr;
         e = e->prev.load(std::memory_order_acquire)) {
      if (++hops > chain_hop_cap) {
        stale = true;  // recycled entries can transiently form absurd chains
        break;
      }
      clk.advance(cfg_.costs.chain_hop);
      env.stats.chain_hops++;
      const std::uint64_t id = e->ident.load(std::memory_order_relaxed);
      if (stm::entry_ident::ptid(id) != thr.ptid) {
        stale = true;  // entry recycled under us — restart the walk
        break;
      }
      if (stm::entry_ident::serial(id) <= my_serial &&
          e->addr.load(std::memory_order_relaxed) == addr) {
        best = e;
        break;
      }
    }
    if (stale) {
      env.check_safepoint();
      bo.spin();
      continue;
    }
    if (best == nullptr) {
      // Only future tasks (or other addresses) wrote here; our past view is
      // the committed state (paper: loop at line 8 exhausts the chain).
      return task_read_committed(env, addr, pair);
    }
    if (best->serial() == my_serial) {
      // Read-after-write from our own log needs no validation (line 10).
      clk.advance(cfg_.costs.read_own_write);
      env.stats.reads_speculative++;
      return best->value.load(std::memory_order_relaxed);
    }

    // Speculative read from a past task: wait until the writer has completed
    // (paper line 11) so the value is final. Parked wait on the thread's
    // gate — completion advances and fence raises both wake it.
    const std::uint64_t writer_serial = best->serial();
    const std::uint32_t writer_inc = best->incarnation.load(std::memory_order_relaxed);
    governor_.await(thr.gate, sched::gate_class::handoff, env.stats, [&] {
      env.check_safepoint();  // writer rolling back fences us too
      return thr.completed_task.load(clk) >= writer_serial;
    });
    // Re-verify identity: the writer may have been rolled back and its log
    // recycled while we waited (then our fence check would normally fire,
    // but a cleared fence can race us — the identity check closes it).
    if (best->incarnation.load(std::memory_order_relaxed) != writer_inc ||
        best->ident.load(std::memory_order_relaxed) !=
            stm::entry_ident::pack(thr.ptid, writer_serial)) {
      env.check_safepoint();
      bo.spin();
      continue;
    }
    const stm::word value = best->value.load(std::memory_order_relaxed);
    clk.join(best->vstamp.load(std::memory_order_relaxed));

    // WAR validation trigger (paper line 13). Unstamped: the counter is a
    // trigger threshold, not a data dependency (DESIGN.md §5).
    const std::uint64_t cw = thr.completed_writer.load_unstamped();
    if (cw > slot.last_writer) {
      if (!validate_task(thr, slot, clk, env.stats, cfg_.costs)) {
        thr.raise_fence(my_serial, clk);
        env.stats.abort_war++;
        throw stm::tx_abort{stm::tx_abort::reason::war};
      }
      slot.last_writer = cw;
    }
    slot.logs.task_read_log.push_back({&pair, addr, writer_serial, writer_inc});
    clk.advance(cfg_.costs.read_speculative);
    env.stats.reads_speculative++;
    return value;
  }
}

stm::word runtime::task_read_committed(task_env& env, const stm::word* addr,
                                       stm::lock_pair& pair) {
  vt::worker_clock& clk = env.clock;
  for (unsigned tries = 0; tries < read_retry_cap; ++tries) {
    const stm::word v1 = pair.r_lock.load(clk);
    if (v1 == stm::r_lock_locked) {
      // A foreign committer is writing the stripe back. Park on the
      // stripe's gate-table shard (DESIGN.md §8.6): the committer's unlock
      // — both the commit's version store and the abort's version restore —
      // wakes the shard, and a fence raised against us broadcasts to every
      // shard, so the unstamped probes below can never sleep through either
      // edge. The loop top re-reads the r_lock stamped, keeping virtual
      // time park-blind.
      env.check_safepoint();
      governor_.await(stripe_gates_.shard_for(&pair), sched::gate_class::stripe,
                      env.stats, [&] {
                        return pair.r_lock.load_unstamped() != stm::r_lock_locked ||
                               env.thr.fence_covers_unstamped(env.serial());
                      });
      env.check_safepoint();
      continue;
    }
    const stm::word val = stm::load_word(addr);
    const stm::word v2 = pair.r_lock.load_unstamped();
    if (v1 != v2) continue;
    if (v1 > env.slot.valid_ts && !task_extend(env)) {
      env.thr.raise_fence(env.serial(), clk);
      env.stats.abort_validation++;
      throw stm::tx_abort{stm::tx_abort::reason::validation};
    }
    env.slot.logs.read_log.push_back({&pair, addr, v1});
    clk.advance(cfg_.costs.read_committed);
    env.stats.reads_committed++;
    return val;
  }
  env.thr.raise_fence(env.serial(), clk);
  env.stats.abort_validation++;
  throw stm::tx_abort{stm::tx_abort::reason::validation};
}

bool runtime::task_extend(task_env& env) {
  const stm::word ts = commit_ts_.load(std::memory_order_acquire);
  for (const stm::read_log_entry& e : env.slot.logs.read_log) {
    if (e.locks->r_lock.load(env.clock) != e.version) return false;
  }
  env.slot.valid_ts = ts;
  env.clock.advance(cfg_.costs.ts_extend_fixed +
                    cfg_.costs.log_entry_validate * env.slot.logs.read_log.size());
  env.stats.ts_extensions++;
  return true;
}

// ---------------------------------------------------------------------------
// write-word (paper Alg. 2, lines 33-53)
// ---------------------------------------------------------------------------

void runtime::task_write(task_env& env, stm::word* addr, stm::word value) {
  env.check_safepoint();
  maybe_periodic_validation(env);
  thread_state& thr = env.thr;
  task_slot& slot = env.slot;
  slot.karma.store(slot.karma.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
  vt::worker_clock& clk = env.clock;
  const std::uint64_t my_serial = env.serial();
  stm::lock_pair& pair = table_.for_addr(addr);
  util::backoff bo;
  unsigned polite_left = cfg_.cm_polite_spins;

  auto push_entry = [&](stm::write_entry* head) -> bool {
    // Structural chain pushes pause while a rollback is popping entries
    // (DESIGN.md §4.3 keeps pop/push mutually ordered this way).
    if (thr.fence_active_unstamped()) {
      env.check_safepoint();
      bo.spin();
      return false;
    }
    stm::write_entry& e = slot.logs.write_log.emplace_back();
    e.addr.store(addr, std::memory_order_relaxed);
    e.value.store(value, std::memory_order_relaxed);
    e.locks = &pair;
    e.owner_thread.store(&thr, std::memory_order_relaxed);
    e.incarnation.store(slot.incarnation.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    e.vstamp.store(clk.now, std::memory_order_relaxed);
    e.prev.store(head, std::memory_order_relaxed);
    e.ident.store(stm::entry_ident::pack(thr.ptid, my_serial), std::memory_order_release);
    stm::write_entry* expected = head;
    if (!pair.w_lock.compare_exchange(expected, &e, clk)) {
      slot.logs.write_log.pop_back();
      return false;
    }
    return true;
  };

  auto post_push_checks = [&] {
    slot.wrote.store(true, std::memory_order_relaxed);
    env.stats.writes++;
    clk.advance(cfg_.costs.write_word);
    // Paper line 52: the stripe may carry a version newer than our snapshot.
    if (pair.r_lock.load(clk) > slot.valid_ts && !task_extend(env)) {
      thr.raise_fence(my_serial, clk);
      env.stats.abort_validation++;
      throw stm::tx_abort{stm::tx_abort::reason::validation};
    }
    // Paper line 53: WAR validation trigger (unstamped snapshot).
    const std::uint64_t cw = thr.completed_writer.load_unstamped();
    if (cw > slot.last_writer) {
      if (!validate_task(thr, slot, clk, env.stats, cfg_.costs)) {
        thr.raise_fence(my_serial, clk);
        env.stats.abort_war++;
        throw stm::tx_abort{stm::tx_abort::reason::war};
      }
      slot.last_writer = cw;
    }
  };

  for (;;) {
    env.check_safepoint();
    stm::write_entry* head = pair.w_lock.load(clk);

    if (head == nullptr) {
      // Unlocked: publish a fresh chain (paper lines 49-51).
      if (push_entry(nullptr)) {
        post_push_checks();
        return;
      }
      continue;
    }

    const std::uint64_t hid = head->ident.load(std::memory_order_relaxed);
    const std::uint32_t hptid = stm::entry_ident::ptid(hid);
    const std::uint64_t hserial = stm::entry_ident::serial(hid);

    if (hptid != thr.ptid) {
      // Write/write conflict with another user-thread (paper lines 41-43):
      // polite spins first (the owner's release may be imminent), then the
      // CM decides. A requester that must keep waiting parks on the
      // stripe's gate-table shard until the owner thread stops heading the
      // chain — its commit, abort and rollback paths all wake that shard
      // (DESIGN.md §8.6) — instead of the old unbounded yielding spin.
      if (polite_left > 0) {
        --polite_left;
        env.stats.wait_spins++;
        env.stats.wait_spins_cm++;
        bo.spin();
        continue;
      }
      if (cm_.should_abort(env, head)) {
        thr.raise_fence(my_serial, clk);
        env.stats.abort_cm++;
        throw stm::tx_abort{stm::tx_abort::reason::cm};
      }
      cm_.wait_for_release(env, pair, head, stripe_gates_, governor_);
      continue;
    }

    if (hserial > my_serial) {
      // A future task of our thread write-locked the stripe: signal it to
      // abort and wait for its entries to be popped (paper line 47). The
      // gate keeps the rolled-back futures parked until we complete, so the
      // stripe hand-off cannot livelock on an oversubscribed core.
      thr.waw_gate.store(my_serial, std::memory_order_relaxed);
      if (thr.raise_fence(hserial, clk)) env.stats.abort_waw_signalled++;
      env.check_safepoint();
      // Park on the stripe's shard until the chain head moves — the rollback
      // coordinator's chain pops wake the shard per entry — or our own fence
      // covers us (fence raises broadcast to every shard). Head-identity
      // predicate: a pushed-on-top head flips it without a wake, but the
      // fence we just raised guarantees the future eventually pops (waking
      // the shard) or its fence release broadcasts, so the sleep always
      // ends; and re-checking per head change lets the loop re-raise the
      // fence if a resumed future re-acquired the stripe. The ident +
      // incarnation snapshots close the recycled-entry ABA (a restarted
      // task re-pushes the same entry address — see cm wait_for_release).
      const std::uint32_t hinc = head->incarnation.load(std::memory_order_relaxed);
      governor_.await(stripe_gates_.shard_for(&pair), sched::gate_class::stripe,
                      env.stats, [&] {
                        return pair.w_lock.load_unstamped() != head ||
                               head->ident.load(std::memory_order_relaxed) != hid ||
                               head->incarnation.load(std::memory_order_relaxed) != hinc ||
                               thr.fence_covers_unstamped(my_serial);
                      });
      continue;
    }

    if (hserial == my_serial) {
      // Our own entries head the chain: update in place if this address was
      // already written, else fall through to the past-writer check.
      stm::write_entry* e = head;
      stm::write_entry* newest_past = nullptr;
      bool stale = false;
      unsigned hops = 0;
      for (; e != nullptr; e = e->prev.load(std::memory_order_acquire)) {
        if (++hops > chain_hop_cap) {
          stale = true;
          break;
        }
        const std::uint64_t id = e->ident.load(std::memory_order_relaxed);
        if (stm::entry_ident::ptid(id) != thr.ptid) {
          stale = true;
          break;
        }
        const std::uint64_t s = stm::entry_ident::serial(id);
        if (s == my_serial) {
          if (e->addr.load(std::memory_order_relaxed) == addr) {
            e->value.store(value, std::memory_order_relaxed);
            env.stats.writes++;
            clk.advance(cfg_.costs.write_word);
            return;
          }
          continue;
        }
        newest_past = e;  // first entry below our own prefix
        break;
      }
      if (stale) {
        bo.spin();
        continue;
      }
      if (newest_past != nullptr &&
          thr.completed_task.load(clk) < newest_past->serial()) {
        // Past writer still running — we are from its future (paper line 45).
        thr.raise_fence(my_serial, clk);
        env.stats.abort_waw_past_running++;
        throw stm::tx_abort{stm::tx_abort::reason::waw_past_running};
      }
      if (push_entry(head)) {
        post_push_checks();
        return;
      }
      continue;
    }

    // hserial < my_serial: a past task is the newest stripe writer.
    if (thr.completed_task.load(clk) < hserial) {
      // Still running: one running writer per location (paper line 45).
      thr.raise_fence(my_serial, clk);
      env.stats.abort_waw_past_running++;
      throw stm::tx_abort{stm::tx_abort::reason::waw_past_running};
    }
    // Completed: stack a new entry on top (paper line 51).
    if (push_entry(head)) {
      post_push_checks();
      return;
    }
  }
}

}  // namespace tlstm::core
