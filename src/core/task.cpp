// Transactional operations of TLSTM — paper Algorithms 1 and 2
// (read-word, write-word, validate-task, cm-should-abort) plus the
// timestamp-extension and periodic-validation machinery.
#include <cstdint>

#include "core/runtime.hpp"
#include "core/task.hpp"
#include "core/thread_state.hpp"
#include "util/spin.hpp"

namespace tlstm::core {

namespace {
constexpr unsigned read_retry_cap = 4096;   // version double-check retries
constexpr unsigned chain_hop_cap = 4096;    // defensive bound on chain walks
}  // namespace

// ---------------------------------------------------------------------------
// task_ctx forwarding surface
// ---------------------------------------------------------------------------

stm::word task_ctx::read(const stm::word* addr) { return rt_.task_read(*this, addr); }
void task_ctx::write(stm::word* addr, stm::word value) { rt_.task_write(*this, addr, value); }

void task_ctx::work(std::uint64_t n) noexcept {
  clock_.advance(n * rt_.cfg().costs.user_work_unit);
}

std::uint64_t task_ctx::serial() const noexcept {
  return slot_.serial.load(std::memory_order_relaxed);
}

void task_ctx::abort_self() {
  thr_.raise_fence(serial(), clock_);
  throw stm::tx_abort{stm::tx_abort::reason::explicit_abort};
}

void task_ctx::log_alloc_undo(void* obj, util::reclaimer::deleter_fn fn, void* ctx) {
  slot_.logs.alloc_undo.push_back({obj, fn, ctx});
}
void task_ctx::log_commit_retire(void* obj, util::reclaimer::deleter_fn fn, void* ctx) {
  slot_.logs.commit_retire.push_back({obj, fn, ctx});
}

void task_ctx::check_safepoint() {
  if (thr_.fence_covers_unstamped(serial())) {
    throw stm::tx_abort{stm::tx_abort::reason::fence};
  }
}

void task_ctx::validate() {
  check_safepoint();
  if (!rt_.validate_task(thr_, slot_, clock_, stats_) || !rt_.task_extend(*this)) {
    thr_.raise_fence(serial(), clock_);
    stats_.abort_validation++;
    throw stm::tx_abort{stm::tx_abort::reason::validation};
  }
  slot_.last_writer = thr_.completed_writer.load_unstamped();
}

void task_ctx::maybe_periodic_validation() {
  const unsigned period = rt_.cfg().validate_every_n_reads;
  if (period != 0 && ++slot_.reads_since_validation >= period) {
    slot_.reads_since_validation = 0;
    validate();
  }
}

// ---------------------------------------------------------------------------
// read-word (paper Alg. 1, lines 5-16)
// ---------------------------------------------------------------------------

stm::word runtime::task_read(task_ctx& ctx, const stm::word* addr) {
  ctx.check_safepoint();
  ctx.maybe_periodic_validation();
  thread_state& thr = ctx.thr_;
  task_slot& slot = ctx.slot_;
  slot.karma.store(slot.karma.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
  vt::worker_clock& clk = ctx.clock_;
  const std::uint64_t my_serial = ctx.serial();
  stm::lock_pair& pair = table_.for_addr(addr);
  util::backoff bo;

  for (;;) {
    stm::write_entry* head = pair.w_lock.load(clk);
    if (head == nullptr || head->ptid() != thr.ptid) {
      // Unlocked, or locked by another user-thread: SwissTM committed read —
      // other threads' speculative values are invisible (paper line 16).
      return task_read_committed(ctx, addr, pair);
    }

    // Stripe is write-locked by our own user-thread: find the newest entry
    // for this address with serial <= ours (paper lines 8-9, address-refined).
    stm::write_entry* best = nullptr;
    bool stale = false;
    unsigned hops = 0;
    for (stm::write_entry* e = head; e != nullptr;
         e = e->prev.load(std::memory_order_acquire)) {
      if (++hops > chain_hop_cap) {
        stale = true;  // recycled entries can transiently form absurd chains
        break;
      }
      clk.advance(cfg_.costs.chain_hop);
      ctx.stats_.chain_hops++;
      const std::uint64_t id = e->ident.load(std::memory_order_relaxed);
      if (stm::entry_ident::ptid(id) != thr.ptid) {
        stale = true;  // entry recycled under us — restart the walk
        break;
      }
      if (stm::entry_ident::serial(id) <= my_serial &&
          e->addr.load(std::memory_order_relaxed) == addr) {
        best = e;
        break;
      }
    }
    if (stale) {
      ctx.check_safepoint();
      bo.spin();
      continue;
    }
    if (best == nullptr) {
      // Only future tasks (or other addresses) wrote here; our past view is
      // the committed state (paper: loop at line 8 exhausts the chain).
      return task_read_committed(ctx, addr, pair);
    }
    if (best->serial() == my_serial) {
      // Read-after-write from our own log needs no validation (line 10).
      clk.advance(cfg_.costs.read_own_write);
      ctx.stats_.reads_speculative++;
      return best->value.load(std::memory_order_relaxed);
    }

    // Speculative read from a past task: wait until the writer has completed
    // (paper line 11) so the value is final.
    const std::uint64_t writer_serial = best->serial();
    const std::uint32_t writer_inc = best->incarnation.load(std::memory_order_relaxed);
    while (thr.completed_task.load(clk) < writer_serial) {
      ctx.check_safepoint();  // writer rolling back fences us too
      ctx.stats_.wait_spins++;
      bo.spin();
    }
    // Re-verify identity: the writer may have been rolled back and its log
    // recycled while we waited (then our fence check would normally fire,
    // but a cleared fence can race us — the identity check closes it).
    if (best->incarnation.load(std::memory_order_relaxed) != writer_inc ||
        best->ident.load(std::memory_order_relaxed) !=
            stm::entry_ident::pack(thr.ptid, writer_serial)) {
      ctx.check_safepoint();
      bo.spin();
      continue;
    }
    const stm::word value = best->value.load(std::memory_order_relaxed);
    clk.join(best->vstamp.load(std::memory_order_relaxed));

    // WAR validation trigger (paper line 13). Unstamped: the counter is a
    // trigger threshold, not a data dependency (DESIGN.md §5).
    const std::uint64_t cw = thr.completed_writer.load_unstamped();
    if (cw > slot.last_writer) {
      if (!validate_task(thr, slot, clk, ctx.stats_)) {
        thr.raise_fence(my_serial, clk);
        ctx.stats_.abort_war++;
        throw stm::tx_abort{stm::tx_abort::reason::war};
      }
      slot.last_writer = cw;
    }
    slot.logs.task_read_log.push_back({&pair, addr, writer_serial, writer_inc});
    clk.advance(cfg_.costs.read_speculative);
    ctx.stats_.reads_speculative++;
    return value;
  }
}

stm::word runtime::task_read_committed(task_ctx& ctx, const stm::word* addr,
                                       stm::lock_pair& pair) {
  vt::worker_clock& clk = ctx.clock_;
  util::backoff bo;
  for (unsigned tries = 0; tries < read_retry_cap; ++tries) {
    const stm::word v1 = pair.r_lock.load(clk);
    if (v1 == stm::r_lock_locked) {
      ctx.check_safepoint();
      ctx.stats_.wait_spins++;
      bo.spin();
      continue;
    }
    const stm::word val = stm::load_word(addr);
    const stm::word v2 = pair.r_lock.load_unstamped();
    if (v1 != v2) continue;
    if (v1 > ctx.slot_.valid_ts && !task_extend(ctx)) {
      ctx.thr_.raise_fence(ctx.serial(), clk);
      ctx.stats_.abort_validation++;
      throw stm::tx_abort{stm::tx_abort::reason::validation};
    }
    ctx.slot_.logs.read_log.push_back({&pair, addr, v1});
    clk.advance(cfg_.costs.read_committed);
    ctx.stats_.reads_committed++;
    return val;
  }
  ctx.thr_.raise_fence(ctx.serial(), clk);
  ctx.stats_.abort_validation++;
  throw stm::tx_abort{stm::tx_abort::reason::validation};
}

bool runtime::task_extend(task_ctx& ctx) {
  const stm::word ts = commit_ts_.load(std::memory_order_acquire);
  for (const stm::read_log_entry& e : ctx.slot_.logs.read_log) {
    if (e.locks->r_lock.load(ctx.clock_) != e.version) return false;
  }
  ctx.slot_.valid_ts = ts;
  ctx.clock_.advance(cfg_.costs.ts_extend_fixed +
                     cfg_.costs.log_entry_validate * ctx.slot_.logs.read_log.size());
  ctx.stats_.ts_extensions++;
  return true;
}

// ---------------------------------------------------------------------------
// validate-task (paper Alg. 1, lines 17-31)
// ---------------------------------------------------------------------------

bool runtime::validate_task(thread_state& thr, task_slot& slot, vt::worker_clock& clk,
                            util::stat_block& stats) {
  stats.task_validations++;
  const std::uint64_t my_serial = slot.serial.load(std::memory_order_relaxed);

  // 1. Speculative reads: for each address we read from a past task, the
  //    newest past entry *for that address* (skipping futures, our own
  //    writes, and colliding addresses on the shared stripe) must still be
  //    the exact entry we read (lines 18-25, address-refined — the paper's
  //    per-location logic at stripe granularity would deadlock on stripe
  //    collisions, see read_log_entry).
  for (const stm::task_read_log_entry& e : slot.logs.task_read_log) {
    stm::write_entry* w = e.locks->w_lock.load(clk);
    if (w == nullptr || w->ptid() != thr.ptid) {
      // The writer's transaction committed or aborted in the meantime —
      // conservatively invalid (paper line 25).
      return false;
    }
    unsigned hops = 0;
    while (w != nullptr &&
           (w->serial() >= my_serial ||
            w->addr.load(std::memory_order_relaxed) != e.addr)) {
      if (w->ptid() != thr.ptid || ++hops > chain_hop_cap) return false;
      w = w->prev.load(std::memory_order_acquire);
      clk.advance(cfg_.costs.chain_hop);
    }
    if (w == nullptr || w->ptid() != thr.ptid || w->serial() != e.serial ||
        w->incarnation.load(std::memory_order_relaxed) != e.incarnation) {
      return false;
    }
  }

  // 2. Committed reads: a past task speculatively writing an *address* we
  //    read from committed state is a WAR conflict (lines 26-31). Colliding
  //    addresses on the same stripe are not conflicts — the stripe version
  //    check at commit covers inter-thread safety.
  for (const stm::read_log_entry& e : slot.logs.read_log) {
    stm::write_entry* w = e.locks->w_lock.load(clk);
    if (w == nullptr || w->ptid() != thr.ptid) continue;
    unsigned hops = 0;
    while (w != nullptr) {
      if (w->ptid() != thr.ptid || ++hops > chain_hop_cap) return false;
      if (w->serial() < my_serial &&
          w->addr.load(std::memory_order_relaxed) == e.addr) {
        return false;  // a past task overwrote the value we read
      }
      w = w->prev.load(std::memory_order_acquire);
      clk.advance(cfg_.costs.chain_hop);
    }
  }

  clk.advance(cfg_.costs.task_log_validate *
              (slot.logs.task_read_log.size() + slot.logs.read_log.size()));
  return true;
}

// ---------------------------------------------------------------------------
// write-word (paper Alg. 2, lines 33-53)
// ---------------------------------------------------------------------------

void runtime::task_write(task_ctx& ctx, stm::word* addr, stm::word value) {
  ctx.check_safepoint();
  ctx.maybe_periodic_validation();
  thread_state& thr = ctx.thr_;
  task_slot& slot = ctx.slot_;
  slot.karma.store(slot.karma.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
  vt::worker_clock& clk = ctx.clock_;
  const std::uint64_t my_serial = ctx.serial();
  stm::lock_pair& pair = table_.for_addr(addr);
  util::backoff bo;
  unsigned polite_left = cfg_.cm_polite_spins;

  auto push_entry = [&](stm::write_entry* head) -> bool {
    // Structural chain pushes pause while a rollback is popping entries
    // (DESIGN.md §4.3 keeps pop/push mutually ordered this way).
    if (thr.fence_active_unstamped()) {
      ctx.check_safepoint();
      bo.spin();
      return false;
    }
    stm::write_entry& e = slot.logs.write_log.emplace_back();
    e.addr.store(addr, std::memory_order_relaxed);
    e.value.store(value, std::memory_order_relaxed);
    e.locks = &pair;
    e.owner_thread.store(&thr, std::memory_order_relaxed);
    e.incarnation.store(slot.incarnation.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    e.vstamp.store(clk.now, std::memory_order_relaxed);
    e.prev.store(head, std::memory_order_relaxed);
    e.ident.store(stm::entry_ident::pack(thr.ptid, my_serial), std::memory_order_release);
    stm::write_entry* expected = head;
    if (!pair.w_lock.compare_exchange(expected, &e, clk)) {
      slot.logs.write_log.pop_back();
      return false;
    }
    return true;
  };

  auto post_push_checks = [&] {
    slot.wrote.store(true, std::memory_order_relaxed);
    ctx.stats_.writes++;
    clk.advance(cfg_.costs.write_word);
    // Paper line 52: the stripe may carry a version newer than our snapshot.
    if (pair.r_lock.load(clk) > slot.valid_ts && !task_extend(ctx)) {
      thr.raise_fence(my_serial, clk);
      ctx.stats_.abort_validation++;
      throw stm::tx_abort{stm::tx_abort::reason::validation};
    }
    // Paper line 53: WAR validation trigger (unstamped snapshot).
    const std::uint64_t cw = thr.completed_writer.load_unstamped();
    if (cw > slot.last_writer) {
      if (!validate_task(thr, slot, clk, ctx.stats_)) {
        thr.raise_fence(my_serial, clk);
        ctx.stats_.abort_war++;
        throw stm::tx_abort{stm::tx_abort::reason::war};
      }
      slot.last_writer = cw;
    }
  };

  for (;;) {
    ctx.check_safepoint();
    stm::write_entry* head = pair.w_lock.load(clk);

    if (head == nullptr) {
      // Unlocked: publish a fresh chain (paper lines 49-51).
      if (push_entry(nullptr)) {
        post_push_checks();
        return;
      }
      continue;
    }

    const std::uint64_t hid = head->ident.load(std::memory_order_relaxed);
    const std::uint32_t hptid = stm::entry_ident::ptid(hid);
    const std::uint64_t hserial = stm::entry_ident::serial(hid);

    if (hptid != thr.ptid) {
      // Write/write conflict with another user-thread (paper lines 41-43).
      if (polite_left > 0) {
        --polite_left;
        ctx.stats_.wait_spins++;
        bo.spin();
        continue;
      }
      if (cm_should_abort(ctx, head)) {
        thr.raise_fence(my_serial, clk);
        ctx.stats_.abort_cm++;
        throw stm::tx_abort{stm::tx_abort::reason::cm};
      }
      ctx.stats_.wait_spins++;
      bo.spin();
      continue;
    }

    if (hserial > my_serial) {
      // A future task of our thread write-locked the stripe: signal it to
      // abort and wait for its entries to be popped (paper line 47). The
      // gate keeps the rolled-back futures parked until we complete, so the
      // stripe hand-off cannot livelock on an oversubscribed core.
      thr.waw_gate.store(my_serial, std::memory_order_relaxed);
      if (thr.raise_fence(hserial, clk)) ctx.stats_.abort_waw_signalled++;
      ctx.check_safepoint();
      ctx.stats_.wait_spins++;
      bo.spin();
      continue;
    }

    if (hserial == my_serial) {
      // Our own entries head the chain: update in place if this address was
      // already written, else fall through to the past-writer check.
      stm::write_entry* e = head;
      stm::write_entry* newest_past = nullptr;
      bool stale = false;
      unsigned hops = 0;
      for (; e != nullptr; e = e->prev.load(std::memory_order_acquire)) {
        if (++hops > chain_hop_cap) {
          stale = true;
          break;
        }
        const std::uint64_t id = e->ident.load(std::memory_order_relaxed);
        if (stm::entry_ident::ptid(id) != thr.ptid) {
          stale = true;
          break;
        }
        const std::uint64_t s = stm::entry_ident::serial(id);
        if (s == my_serial) {
          if (e->addr.load(std::memory_order_relaxed) == addr) {
            e->value.store(value, std::memory_order_relaxed);
            ctx.stats_.writes++;
            clk.advance(cfg_.costs.write_word);
            return;
          }
          continue;
        }
        newest_past = e;  // first entry below our own prefix
        break;
      }
      if (stale) {
        bo.spin();
        continue;
      }
      if (newest_past != nullptr &&
          thr.completed_task.load(clk) < newest_past->serial()) {
        // Past writer still running — we are from its future (paper line 45).
        thr.raise_fence(my_serial, clk);
        ctx.stats_.abort_waw_past_running++;
        throw stm::tx_abort{stm::tx_abort::reason::waw_past_running};
      }
      if (push_entry(head)) {
        post_push_checks();
        return;
      }
      continue;
    }

    // hserial < my_serial: a past task is the newest stripe writer.
    if (thr.completed_task.load(clk) < hserial) {
      // Still running: one running writer per location (paper line 45).
      thr.raise_fence(my_serial, clk);
      ctx.stats_.abort_waw_past_running++;
      throw stm::tx_abort{stm::tx_abort::reason::waw_past_running};
    }
    // Completed: stack a new entry on top (paper line 51).
    if (push_entry(head)) {
      post_push_checks();
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// cm-should-abort (paper Alg. 2, lines 54-64) — task-aware inter-thread CM
// ---------------------------------------------------------------------------

bool runtime::cm_should_abort(task_ctx& ctx, stm::write_entry* head) {
  auto* other = static_cast<thread_state*>(head->owner_thread.load(std::memory_order_relaxed));
  thread_state& thr = ctx.thr_;
  if (other == nullptr || other == &thr) return false;

  const std::uint64_t owner_serial = head->serial();
  task_slot& oslot = other->slot_for(owner_serial);
  if (oslot.serial.load(std::memory_order_acquire) != owner_serial) {
    return false;  // stale peek (slot recycled); caller re-reads the lock
  }
  const std::uint64_t owner_tx_start = oslot.tx_start_serial.load(std::memory_order_relaxed);

  if (cfg_.cm_task_aware) {
    // Progress = completed tasks of the transaction so far (paper lines
    // 55-56): the more progressed side is less speculative and more likely
    // to commit.
    // Unstamped peeks: the comparison is a heuristic; joining another
    // thread's completion stamp would drag our timeline for a decision
    // that transfers no data.
    const auto my_progress =
        static_cast<std::int64_t>(thr.completed_task.load_unstamped()) -
        static_cast<std::int64_t>(ctx.slot_.tx_start_serial.load(std::memory_order_relaxed));
    const auto owner_progress =
        static_cast<std::int64_t>(other->completed_task.load_unstamped()) -
        static_cast<std::int64_t>(owner_tx_start);

    if (my_progress > owner_progress) {
      if (other->raise_fence(owner_tx_start, ctx.clock_)) ctx.stats_.abort_tx_inter++;
      return false;  // wait for the victim to release the stripe
    }
    if (my_progress < owner_progress) return true;
  }

  // Tie: the configured classic CM decides (lines 61-64; the paper ships
  // two-phase greedy and names this layer pluggable).
  switch (cfg_.cm_tie_break) {
    case cm_policy::aggressive:
      // The requester always wins — maximal progress for the attacker,
      // livelock-prone under symmetric contention (the ablation shows it).
      if (other->raise_fence(owner_tx_start, ctx.clock_)) ctx.stats_.abort_tx_inter++;
      return false;
    case cm_policy::polite:
      // The requester yields after its polite spins — but only boundedly:
      // a requester that can never abort an owner deadlocks on the crossed
      // stripe cycle of paper §3.2, so after repeated consecutive losses we
      // escalate to the greedy decision below.
      if (ctx.slot_.consecutive_restarts < cfg_.cm_polite_abort_cap) return true;
      break;  // escalate: greedy decides
    case cm_policy::karma: {
      // More transactional accesses = more work to lose = higher priority.
      // Relaxed foreign peeks: the comparison is a heuristic (see the
      // progress peeks above); ties fall through to greedy.
      const std::uint64_t mine =
          tx_karma(thr, ctx.slot_.tx_start_serial.load(std::memory_order_relaxed),
                   ctx.slot_.tx_commit_serial.load(std::memory_order_relaxed));
      const std::uint64_t theirs =
          tx_karma(*other, owner_tx_start,
                   oslot.tx_commit_serial.load(std::memory_order_relaxed));
      if (mine > theirs) {
        if (other->raise_fence(owner_tx_start, ctx.clock_)) ctx.stats_.abort_tx_inter++;
        return false;
      }
      if (mine < theirs) return true;
      break;  // karma tie → greedy
    }
    case cm_policy::greedy:
      break;
  }
  if (ctx.slot_.tx_greedy_ts.load(std::memory_order_relaxed) <
      oslot.tx_greedy_ts.load(std::memory_order_relaxed)) {
    if (other->raise_fence(owner_tx_start, ctx.clock_)) ctx.stats_.abort_tx_inter++;
    return false;
  }
  return true;
}

/// Karma priority of a transaction: accesses performed so far by its active
/// tasks. Foreign slots are peeked relaxed and identity-checked — a recycled
/// slot contributes garbage only to a heuristic.
std::uint64_t runtime::tx_karma(thread_state& thr, std::uint64_t tx_start,
                                std::uint64_t tx_commit) const {
  std::uint64_t sum = 0;
  for (std::uint64_t s = tx_start; s <= tx_commit && s < tx_start + thr.depth; ++s) {
    task_slot& sl = thr.slot_for(s);
    if (sl.serial.load(std::memory_order_acquire) != s) continue;
    sum += sl.karma.load(std::memory_order_relaxed);
  }
  return sum;
}

}  // namespace tlstm::core
