#include "core/topology.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "core/runtime.hpp"
#include "core/session.hpp"

namespace tlstm::core {

namespace {
constexpr double k_alpha = 0.3;       ///< EWMA weight of the newest sample
constexpr double k_idle_load = 0.5;   ///< EWMA below this counts a pipe idle
constexpr unsigned k_max_backoff = 16; ///< idle tick-period stretch cap
}  // namespace

topology_controller::topology_controller(session_front& front)
    : front_(front), ewma_(front.pipelines(), 0.0) {
  th_ = std::thread([this] { run(); });
}

topology_controller::~topology_controller() { stop(); }

void topology_controller::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (th_.joinable()) th_.join();
}

void topology_controller::run() {
  const config& cfg = front_.rt_.cfg();
  const auto base = std::chrono::microseconds(cfg.topo_interval_us);
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait_for(lk, base * backoff_, [&] { return stop_; });
      if (stop_) return;
    }
    if (tick()) {
      backoff_ = 1;  // a resize means load is moving — sample densely
    } else if (grow_streak_ == 0 && shrink_streak_ == 0) {
      backoff_ = std::min(backoff_ * 2, k_max_backoff);
    } else {
      backoff_ = 1;  // a streak is building — keep full resolution
    }
  }
}

bool topology_controller::tick() {
  const config& cfg = front_.rt_.cfg();
  const std::uint64_t w = front_.topo_.load(std::memory_order_seq_cst);
  const unsigned width = session_front::topo_width(w);
  const unsigned n = front_.pipelines();

  double total = 0.0;
  double total_now = 0.0;
  unsigned idle = 0;
  for (unsigned t = 0; t < width; ++t) {
    session_front::pipe& p = *front_.pipes_[t];
    // Occupancy = enqueued - retired (queued + in-pipeline). Retired is
    // loaded FIRST so a racing retirement can only understate it — the
    // difference never goes spuriously negative.
    const std::uint64_t r = p.retired_txs.load(std::memory_order_relaxed);
    const std::uint64_t q = p.enqueued_txs.load(std::memory_order_relaxed);
    const double load = q >= r ? static_cast<double>(q - r) : 0.0;
    double& e = ewma_[t];
    e = e * (1.0 - k_alpha) + load * k_alpha;
    // Observability gauge (fixed-point x1000); the float above stays the
    // control state.
    p.depth_ewma_milli.store(static_cast<std::uint64_t>(e * 1000.0),
                             std::memory_order_relaxed);
    total += e;
    total_now += load;
    if (e < k_idle_load && load == 0.0) ++idle;
  }
  const double mean = total / static_cast<double>(width);
  const double mean_now = total_now / static_cast<double>(width);

  // Trim pass (DESIGN.md §12): after a sustained fully-idle stretch no
  // worker is mid-transaction and nothing is queued, so spare write-log
  // chunks and registered pools can safely go back to the OS. Two ticks of
  // full idleness gate it (one tick can be a sampling artifact), and the
  // counter resets on any activity or after a trim so a long lull pays one
  // pass, not one per tick.
  if (cfg.trim_on_idle && idle == width && total_now == 0.0) {
    if (++idle_ticks_ >= 2) {
      front_.rt_.trim_now();
      idle_ticks_ = 0;
    }
  } else {
    idle_ticks_ = 0;
  }

  unsigned target = width;
  // Growth needs the backlog to be *still there*, not just remembered: after
  // a short burst drains, the EWMA keeps reading above the threshold for a
  // few ticks while the pipes sit empty, and on its own it would build a
  // grow streak from pure decay — topology flap per burst. A sustained
  // backlog trivially passes both tests.
  if (mean >= cfg.topo_grow_depth && mean_now >= cfg.topo_grow_depth &&
      width < n) {
    shrink_streak_ = 0;
    if (++grow_streak_ >= cfg.topo_hysteresis) {
      target = std::min(width * 2, n);
    }
  } else if (mean <= cfg.topo_shrink_depth && idle * 2 >= width &&
             width > cfg.min_pipelines) {
    grow_streak_ = 0;
    if (++shrink_streak_ >= cfg.topo_hysteresis) {
      target = std::max(width / 2, cfg.min_pipelines);
    }
  } else {
    grow_streak_ = 0;
    shrink_streak_ = 0;
  }
  if (target == width) return false;
  grow_streak_ = 0;
  shrink_streak_ = 0;
  // Revived pipes inherit the pre-resize mean rather than starting at 0:
  // whatever they had when retired is stale, but seeding them cold halves
  // the observed mean right after every doubling — under a sustained
  // backlog that breaks the grow streak exactly when the next doubling is
  // wanted, and the ramp to full width stalls for several idle-backoff
  // periods per stage. The rerouted load reaches the new pipes within a
  // tick or two anyway; until then the inherited estimate is the best
  // prior, and a real lull still decays it within a few ticks.
  const bool resized = front_.apply_resize(target);
  if (resized && target > width) {
    for (unsigned t = width; t < target; ++t) ewma_[t] = mean;
  }
  // A shrink just harvested the retired pipes' write logs; trim the spares
  // that cleared their grace period (plus registered pools) right away.
  if (resized && target < width && cfg.trim_on_idle) front_.rt_.trim_now();
  return resized;
}

}  // namespace tlstm::core
