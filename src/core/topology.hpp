// Elastic topology controller (DESIGN.md §11): a background thread that
// samples per-pipeline occupancy, smooths it with an EWMA and resizes the
// active pipeline set through session_front::apply_resize — growing under
// sustained backlog, shrinking when most of the active set idles. The same
// observe/decide/actuate pattern as the adaptive speculation controller
// (vt/adapt_controller.hpp, §5a), one level up: that one sizes the window
// *inside* a pipeline, this one sizes the *set of pipelines*.
//
// Policy (all knobs in config.hpp):
//   - signal: per-pipe occupancy = enqueued_txs - retired_txs (queued +
//     in-pipeline transactions), EWMA-smoothed (alpha 0.3) per tick.
//   - grow: mean active EWMA >= topo_grow_depth for topo_hysteresis
//     consecutive ticks -> double the width (capped at num_threads).
//   - shrink: mean active EWMA <= topo_shrink_depth AND at least half the
//     active pipes momentarily idle, for topo_hysteresis consecutive
//     ticks -> halve the width (floored at min_pipelines).
//   - idle backoff: while stable, the tick period stretches up to 8x so a
//     quiescent runtime pays near-zero controller CPU.
//
// The controller only exists when config.elastic is on AND topo_interval_us
// is non-zero; with interval 0 the topology is manual-only
// (session::resize), which is what the deterministic tests use.
#pragma once

#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace tlstm::core {

class session_front;

class topology_controller {
 public:
  /// Starts the controller thread immediately.
  explicit topology_controller(session_front& front);
  ~topology_controller();
  topology_controller(const topology_controller&) = delete;
  topology_controller& operator=(const topology_controller&) = delete;

  /// Signals the thread and joins it. Idempotent. A resize in flight runs
  /// to completion (apply_resize never abandons a published epoch), so
  /// after stop() returns the topology is quiescent.
  void stop();

 private:
  void run();
  /// One observe/decide/actuate step; returns true when it resized.
  bool tick();

  session_front& front_;
  std::vector<double> ewma_;  ///< per-pipe occupancy EWMA (thread-private)
  unsigned grow_streak_ = 0;
  unsigned shrink_streak_ = 0;
  unsigned backoff_ = 1;  ///< idle tick-period multiplier, 1..8
  /// Consecutive fully-idle ticks; at the trim threshold the controller
  /// drives runtime::trim_now() (DESIGN.md §12) and resets, so a quiescent
  /// server returns its high-water memory without a dedicated thread.
  unsigned idle_ticks_ = 0;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread th_;
};

}  // namespace tlstm::core
