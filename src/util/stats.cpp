#include "util/stats.hpp"

#include <ostream>
#include <sstream>

namespace tlstm::util {

void stat_block::accumulate(const stat_block& other) noexcept {
  tx_started += other.tx_started;
  tx_committed += other.tx_committed;
  tx_read_only += other.tx_read_only;
  task_started += other.task_started;
  task_committed += other.task_committed;
  task_restarts += other.task_restarts;
  tx_nested += other.tx_nested;
  abort_war += other.abort_war;
  abort_waw_past_running += other.abort_waw_past_running;
  abort_waw_signalled += other.abort_waw_signalled;
  abort_cm += other.abort_cm;
  abort_validation += other.abort_validation;
  abort_tx_inter += other.abort_tx_inter;
  abort_fence += other.abort_fence;
  reads_committed += other.reads_committed;
  reads_speculative += other.reads_speculative;
  writes += other.writes;
  task_validations += other.task_validations;
  ts_extensions += other.ts_extensions;
  chain_hops += other.chain_hops;
  wait_spins += other.wait_spins;
  wait_parks += other.wait_parks;
  wait_spins_handoff += other.wait_spins_handoff;
  wait_parks_handoff += other.wait_parks_handoff;
  wait_spins_inbox += other.wait_spins_inbox;
  wait_parks_inbox += other.wait_parks_inbox;
  wait_spins_rollback += other.wait_spins_rollback;
  wait_parks_rollback += other.wait_parks_rollback;
  wait_spins_stripe += other.wait_spins_stripe;
  wait_parks_stripe += other.wait_parks_stripe;
  wait_spins_cm += other.wait_spins_cm;
  wait_parks_cm += other.wait_parks_cm;
  user_ops += other.user_ops;
  session_batches += other.session_batches;
  session_batch_txs += other.session_batch_txs;
  session_callbacks += other.session_callbacks;
  session_callback_errors += other.session_callback_errors;
  latency_samples += other.latency_samples;
  readpath_hits += other.readpath_hits;
  readpath_retries += other.readpath_retries;
  readpath_fallbacks += other.readpath_fallbacks;
  window_shrinks += other.window_shrinks;
  window_grows += other.window_grows;
  tasks_deferred += other.tasks_deferred;
  window_stalls += other.window_stalls;
  drain_stalls += other.drain_stalls;
  topo_grows += other.topo_grows;
  topo_shrinks += other.topo_shrinks;
  topo_fence_waits += other.topo_fence_waits;
  topo_reroutes += other.topo_reroutes;
  gate_shard_parks += other.gate_shard_parks;
  journal_chunks_live += other.journal_chunks_live;
  journal_chunks_pruned += other.journal_chunks_pruned;
  writelog_chunks_recycled += other.writelog_chunks_recycled;
  pool_bytes_trimmed += other.pool_bytes_trimmed;
}

std::string to_string(const stat_block& s) {
  std::ostringstream os;
  os << s;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const stat_block& s) {
  os << "tx{started=" << s.tx_started << " committed=" << s.tx_committed
     << " ro=" << s.tx_read_only << "} task{started=" << s.task_started
     << " committed=" << s.task_committed << " restarts=" << s.task_restarts
     << " nested=" << s.tx_nested << "} aborts{war=" << s.abort_war << " waw_run=" << s.abort_waw_past_running
     << " waw_sig=" << s.abort_waw_signalled << " cm=" << s.abort_cm
     << " valid=" << s.abort_validation << " tx_inter=" << s.abort_tx_inter
     << " fence=" << s.abort_fence << "} ops{rd=" << s.reads_committed
     << " rd_spec=" << s.reads_speculative << " wr=" << s.writes
     << " validations=" << s.task_validations << " ext=" << s.ts_extensions
     << " hops=" << s.chain_hops << " spins=" << s.wait_spins
     << " parks=" << s.wait_parks << " user_ops=" << s.user_ops
     << "} waits{handoff=" << s.wait_spins_handoff << "/" << s.wait_parks_handoff
     << " inbox=" << s.wait_spins_inbox << "/" << s.wait_parks_inbox
     << " rollback=" << s.wait_spins_rollback << "/" << s.wait_parks_rollback
     << " stripe=" << s.wait_spins_stripe << "/" << s.wait_parks_stripe
     << " cm=" << s.wait_spins_cm << "/" << s.wait_parks_cm
     << "} session{batches=" << s.session_batches << " txs=" << s.session_batch_txs
     << " cbs=" << s.session_callbacks << " cb_errs=" << s.session_callback_errors
     << " lat=" << s.latency_samples
     << "} readpath{hits=" << s.readpath_hits << " retries=" << s.readpath_retries
     << " fallbacks=" << s.readpath_fallbacks
     << "} adapt{shrinks=" << s.window_shrinks
     << " grows=" << s.window_grows << " deferred=" << s.tasks_deferred
     << " win_stalls=" << s.window_stalls << " drain_stalls=" << s.drain_stalls
     << "} topo{grows=" << s.topo_grows << " shrinks=" << s.topo_shrinks
     << " fence_waits=" << s.topo_fence_waits << " reroutes=" << s.topo_reroutes
     << " shard_parks=" << s.gate_shard_parks
     << "} mem{journal_live=" << s.journal_chunks_live
     << " journal_pruned=" << s.journal_chunks_pruned
     << " writelog_recycled=" << s.writelog_chunks_recycled
     << " pool_trimmed=" << s.pool_bytes_trimmed << "}";
  return os;
}

}  // namespace tlstm::util
