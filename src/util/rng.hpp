// Deterministic, fast pseudo-random number generation for workloads and
// tests. We avoid <random> engines in hot paths: xoshiro256** is an order of
// magnitude cheaper and reproducible across platforms.
#pragma once

#include <cstdint>

namespace tlstm::util {

/// splitmix64 — used to seed xoshiro and to hash seeds into streams.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna. All state is local; one instance per
/// worker/client, seeded deterministically from (seed, stream id).
class xoshiro256 {
 public:
  explicit constexpr xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL,
                                std::uint64_t stream = 0) noexcept {
    std::uint64_t sm = seed ^ (stream * 0x9e3779b97f4a7c15ULL + 0x1234567ULL);
    for (auto& word : s_) word = splitmix64(sm);
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Lemire's multiply-shift reduction; the
  /// slight modulo bias is irrelevant for workload generation.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    return (static_cast<unsigned __int128>(next()) * bound) >> 64;
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + next_below(hi - lo + 1);
  }

  /// Bernoulli draw: true with probability pct/100.
  constexpr bool next_percent(unsigned pct) noexcept { return next_below(100) < pct; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace tlstm::util
