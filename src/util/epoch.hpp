// Epoch-based memory reclamation with type-stable object pools.
//
// Why this exists (DESIGN.md §4.4): TLSTM tasks read speculatively and may
// be doomed; a doomed task can hold a pointer to a node that a committed
// transaction has already freed. Safety here has two layers:
//   1. *Type stability* — pool chunks are never returned to the OS while the
//      pool lives, so a stale pointer dereference reads garbage values, never
//      faults. Validation then kills the doomed task.
//   2. *Grace periods* — a freed node is recycled (and non-transactionally
//      re-initialized) only after every task that was live at free time has
//      finished, so committed snapshots are never torn without a version
//      bump in the lock table.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "util/cache.hpp"
#include "util/spin.hpp"

namespace tlstm::util {

/// Global epoch clock plus per-participant pin slots. One participant per
/// runtime worker. Advancement requires every *pinned* participant to have
/// observed the current epoch (classic 3-epoch scheme).
class epoch_domain {
 public:
  static constexpr std::size_t max_participants = 512;
  static constexpr std::uint64_t unpinned = ~0ull;

  epoch_domain() = default;
  epoch_domain(const epoch_domain&) = delete;
  epoch_domain& operator=(const epoch_domain&) = delete;

  /// Claims a participant slot; call once per worker thread.
  std::size_t register_participant();
  void unregister_participant(std::size_t idx) noexcept;

  /// Pins the participant at the current global epoch for the duration of a
  /// task. Reads between pin and unpin are protected.
  void pin(std::size_t idx) noexcept {
    for (;;) {
      // Publish the observed epoch before any protected read; seq_cst keeps
      // the pin visible to advancers without a second fence.
      slots_[idx].value.store(global_.load(std::memory_order_relaxed),
                              std::memory_order_seq_cst);
      // Dekker handshake with begin_trim(): our pin store and its gate
      // store are both seq_cst, so either we observe the in-flight trim
      // here (and back off unpinned until it finishes) or the trimmer
      // observes our pin in quiescent() and refuses to unmap. Both loads
      // reading "old" is impossible under the seq_cst total order.
      if (!trim_gate_.load(std::memory_order_seq_cst)) return;
      slots_[idx].value.store(unpinned, std::memory_order_release);
      while (trim_gate_.load(std::memory_order_acquire)) cpu_relax();
    }
  }
  void unpin(std::size_t idx) noexcept {
    slots_[idx].value.store(unpinned, std::memory_order_release);
  }

  std::uint64_t current() const noexcept { return global_.load(std::memory_order_acquire); }

  /// Attempts to advance the global epoch. Succeeds iff every pinned
  /// participant has observed the current epoch. Returns the (possibly new)
  /// current epoch.
  std::uint64_t try_advance() noexcept;

  /// Epochs strictly below the returned value are safe to reclaim: no pinned
  /// participant can still observe them.
  std::uint64_t safe_before() const noexcept;

  /// True iff no participant is currently pinned. Stronger than safe_before:
  /// trimming pool chunks (object_pool::trim) unmaps memory, which breaks
  /// type stability for *any* in-flight speculative reader, however recent.
  /// A bare sample cannot HOLD that state — a participant may pin right
  /// after it returns — so unmapping must go through begin_trim()/
  /// end_trim(), which excludes new pins for the duration.
  bool quiescent() const noexcept {
    const std::size_t hw = high_water_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < hw; ++i) {
      if (used_[i].load(std::memory_order_acquire) &&
          slots_[i].value.load(std::memory_order_seq_cst) != unpinned) {
        return false;
      }
    }
    return true;
  }

  /// Enters the exclusive trim section: raises a gate that makes concurrent
  /// pin() calls back off, then re-checks full quiescence under that gate.
  /// Returns false (gate released) if any participant was already pinned —
  /// the caller must not unmap anything. On true, the domain stays pin-free
  /// until the matching end_trim(); keep the section short, since pinners
  /// spin-wait on the gate for its duration.
  bool begin_trim() noexcept {
    bool expected = false;
    if (!trim_gate_.compare_exchange_strong(expected, true, std::memory_order_seq_cst)) {
      return false;  // another trim is already in flight
    }
    if (!quiescent()) {
      trim_gate_.store(false, std::memory_order_release);
      return false;
    }
    return true;
  }
  void end_trim() noexcept { trim_gate_.store(false, std::memory_order_release); }

 private:
  std::atomic<std::uint64_t> global_{1};
  padded<std::atomic<std::uint64_t>> slots_[max_participants];
  std::atomic<bool> used_[max_participants]{};
  std::mutex register_mu_;
  std::atomic<std::size_t> high_water_{0};
  /// Trim-in-flight gate (begin_trim/end_trim); checked by pin().
  std::atomic<bool> trim_gate_{false};
};

/// Moves the chunks of every retired write-log batch whose retire epoch is
/// strictly below `safe` onto `spares`, compacting the survivors in place.
/// Shared by the recycling sites (runtime::reap_safe_wlogs_locked,
/// swiss_runtime::make_thread) chiefly for the self-move guard: when the
/// leading batch has not graduated yet, kept == i, and an unguarded
/// `retired[kept++] = std::move(retired[i])` would move a vector onto
/// itself — which empties it, freeing chunks still inside their grace
/// period while doomed readers may chase stale chain pointers into them.
template <typename Batch, typename Spares>
void reap_retired_batches(std::vector<Batch>& retired, std::uint64_t safe, Spares& spares) {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < retired.size(); ++i) {
    Batch& batch = retired[i];
    if (batch.epoch < safe) {
      for (auto& c : batch.chunks) spares.push_back(std::move(c));
    } else {
      if (kept != i) retired[kept] = std::move(batch);
      ++kept;
    }
  }
  retired.resize(kept);
}

/// Per-thread deferred-free list. `retire()` records (pointer, deleter);
/// `collect()` runs deleters whose retirement epoch is safely in the past.
class reclaimer {
 public:
  using deleter_fn = void (*)(void* obj, void* ctx);

  explicit reclaimer(epoch_domain& dom) : dom_(&dom) {}
  ~reclaimer() { flush_all(); }
  reclaimer(const reclaimer&) = delete;
  reclaimer& operator=(const reclaimer&) = delete;

  void retire(void* obj, deleter_fn fn, void* ctx) {
    limbo_.push_back({dom_->current(), obj, fn, ctx});
    if (limbo_.size() >= collect_threshold) {
      dom_->try_advance();
      collect();
    }
  }

  /// Frees everything whose epoch is < safe_before(). Returns #freed.
  std::size_t collect();

  /// Unconditional drain; only safe once the runtime has quiesced (no task
  /// pinned). Used at shutdown and between benchmark phases.
  std::size_t flush_all();

  std::size_t pending() const noexcept { return limbo_.size(); }

 private:
  static constexpr std::size_t collect_threshold = 128;
  struct item {
    std::uint64_t epoch;
    void* obj;
    deleter_fn fn;
    void* ctx;
  };
  epoch_domain* dom_;
  std::vector<item> limbo_;
};

/// Type-stable pool: chunked storage, lock-protected shared free list.
/// Chunks live until pool destruction, giving the type-stability guarantee.
/// Free-list pushes must come through a reclaimer grace period.
template <typename T>
class object_pool {
 public:
  explicit object_pool(std::size_t chunk_objects = 1024) : chunk_objects_(chunk_objects) {}
  ~object_pool() {
    for (auto& c : chunks_) ::operator delete[](c, std::align_val_t{alignof(T)});
  }
  object_pool(const object_pool&) = delete;
  object_pool& operator=(const object_pool&) = delete;

  /// Grabs raw storage (no construction). Thread-safe.
  void* allocate_raw() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_list_.empty()) {
      void* p = free_list_.back();
      free_list_.pop_back();
      return p;
    }
    if (bump_ == chunk_objects_ || chunks_.empty()) {
      chunks_.push_back(static_cast<char*>(
          ::operator new[](chunk_objects_ * slot_size(), std::align_val_t{alignof(T)})));
      bump_ = 0;
    }
    return chunks_.back() + (bump_++) * slot_size();
  }

  template <typename... Args>
  T* construct(Args&&... args) {
    if constexpr (sizeof...(Args) == 0) {
      // Default-init, not value-init: value-initialization zero-fills the
      // (possibly recycled) slot with plain stores before the member
      // constructors run, racing doomed readers that still hold the node
      // (DESIGN.md §4.4). Pooled types initialize every member themselves
      // (tm_var's constructor stores atomically).
      return new (allocate_raw()) T;
    } else {
      return new (allocate_raw()) T(std::forward<Args>(args)...);
    }
  }

  /// Returns storage to the free list. Callers must have established a grace
  /// period (go through reclaimer::retire with pool_deleter).
  void deallocate_raw(void* p) {
    std::lock_guard<std::mutex> lock(mu_);
    free_list_.push_back(p);
  }

  /// Deleter thunk for reclaimer::retire — destroys and recycles.
  static void pool_deleter(void* obj, void* ctx) {
    auto* self = static_cast<object_pool*>(ctx);
    static_cast<T*>(obj)->~T();
    self->deallocate_raw(obj);
  }

  std::size_t chunks_allocated() const {
    std::lock_guard<std::mutex> lock(mu_);
    return chunks_.size();
  }

  /// Trim-to-high-water pass: returns fully-free chunks (every slot on the
  /// free list) to the OS. This deliberately pierces type stability, so when
  /// `dom` is given the pass runs inside dom->begin_trim()/end_trim(): the
  /// gate both verifies that no reader is pinned and HOLDS that quiescence
  /// (new pins back off) until the frees below complete — a bare quiescent()
  /// sample could go stale between the check and the delete. The bump chunk
  /// (partially handed out) is never freed. Returns bytes released.
  std::size_t trim(epoch_domain* dom = nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    if (chunks_.size() <= 1 || free_list_.empty()) return 0;
    if (dom == nullptr) return trim_locked();
    if (!dom->begin_trim()) return 0;
    const std::size_t bytes = trim_locked();
    dom->end_trim();
    return bytes;
  }

 private:
  /// The actual pass; mu_ held, and (when epoch-guarded) the caller holds
  /// the domain's trim gate across the ::operator delete[] calls.
  std::size_t trim_locked() {
    const std::size_t bytes_per_chunk = chunk_objects_ * slot_size();
    // Count free slots per chunk; a chunk is reclaimable iff every one of
    // its slots is free. The bump chunk (chunks_.back()) stays: slots past
    // bump_ were never handed out, so its free count can't reach capacity,
    // and keeping it preserves allocate_raw's bump arithmetic.
    std::vector<std::size_t> free_in(chunks_.size(), 0);
    auto chunk_of = [&](void* p) -> std::size_t {
      const char* q = static_cast<const char*>(p);
      for (std::size_t i = 0; i < chunks_.size(); ++i) {
        if (q >= chunks_[i] && q < chunks_[i] + bytes_per_chunk) return i;
      }
      return chunks_.size();  // unreachable for pool-owned slots
    };
    for (void* p : free_list_) {
      const std::size_t c = chunk_of(p);
      if (c < chunks_.size()) ++free_in[c];
    }
    std::vector<bool> drop(chunks_.size(), false);
    std::size_t dropped = 0;
    for (std::size_t i = 0; i + 1 < chunks_.size(); ++i) {
      if (free_in[i] == chunk_objects_) {
        drop[i] = true;
        ++dropped;
      }
    }
    if (dropped == 0) return 0;
    // Purge free-list slots that live in dropped chunks, then the chunks.
    std::vector<void*> kept;
    kept.reserve(free_list_.size() - dropped * chunk_objects_);
    for (void* p : free_list_) {
      if (!drop[chunk_of(p)]) kept.push_back(p);
    }
    free_list_ = std::move(kept);
    std::vector<char*> survivors;
    survivors.reserve(chunks_.size() - dropped);
    for (std::size_t i = 0; i < chunks_.size(); ++i) {
      if (drop[i]) {
        ::operator delete[](chunks_[i], std::align_val_t{alignof(T)});
      } else {
        survivors.push_back(chunks_[i]);
      }
    }
    chunks_ = std::move(survivors);
    return dropped * bytes_per_chunk;
  }

 private:
  static constexpr std::size_t slot_size() {
    return (sizeof(T) + alignof(T) - 1) / alignof(T) * alignof(T);
  }
  const std::size_t chunk_objects_;
  mutable std::mutex mu_;
  std::vector<char*> chunks_;
  std::vector<void*> free_list_;
  std::size_t bump_ = 0;
};

}  // namespace tlstm::util
