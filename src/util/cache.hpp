// Cache-line utilities: alignment constants and false-sharing-free wrappers.
#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <utility>

namespace tlstm::util {

// std::hardware_destructive_interference_size is not reliably defined on all
// standard libraries; 64 bytes is correct for every x86-64 and most ARM parts.
inline constexpr std::size_t cache_line_size = 64;

/// Wraps a value in its own cache line so that independent per-thread data
/// never false-shares. The wrapped type is reachable through `value` or the
/// pointer-like accessors.
template <typename T>
struct alignas(cache_line_size) padded {
  T value{};

  padded() = default;
  explicit padded(T v) : value(std::move(v)) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

/// A cache-line padded atomic counter with relaxed increments; used for the
/// statistics counters that must not perturb the measured runtime.
struct alignas(cache_line_size) padded_counter {
  std::atomic<std::uint64_t> n{0};

  void add(std::uint64_t d = 1) noexcept { n.fetch_add(d, std::memory_order_relaxed); }
  std::uint64_t load() const noexcept { return n.load(std::memory_order_relaxed); }
  void reset() noexcept { n.store(0, std::memory_order_relaxed); }
};

}  // namespace tlstm::util
