// Runtime statistics. Each worker owns a padded counter block (plain
// uint64 fields — worker-local writes, aggregated only after quiescence), so
// collecting statistics never adds synchronization to the measured paths.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "util/cache.hpp"

namespace tlstm::util {

/// Counter block for one worker. Field names mirror the paper's abort
/// taxonomy (§3.2): WAR / WAW intra-thread conflicts, inter-thread
/// contention-manager kills, validation failures, transaction-level aborts.
struct alignas(cache_line_size) stat_block {
  // Progress.
  std::uint64_t tx_started = 0;
  std::uint64_t tx_committed = 0;
  std::uint64_t tx_read_only = 0;
  std::uint64_t task_started = 0;
  std::uint64_t task_committed = 0;
  std::uint64_t task_restarts = 0;
  std::uint64_t tx_nested = 0;  // nested atomic scopes flattened (paper §2)

  // Abort causes (task granularity).
  std::uint64_t abort_war = 0;             // intra-thread write-after-read
  std::uint64_t abort_waw_past_running = 0;  // wrote where a running past task wrote
  std::uint64_t abort_waw_signalled = 0;   // future task killed by past writer
  std::uint64_t abort_cm = 0;              // inter-thread contention manager
  std::uint64_t abort_validation = 0;      // read-log revalidation failed
  std::uint64_t abort_tx_inter = 0;        // whole-transaction inter-thread abort
  std::uint64_t abort_fence = 0;           // cascaded by the thread restart fence

  // Operation mix.
  std::uint64_t reads_committed = 0;   // reads served from committed state
  std::uint64_t reads_speculative = 0; // reads served from redo-log chains
  std::uint64_t writes = 0;
  std::uint64_t task_validations = 0;
  std::uint64_t ts_extensions = 0;
  std::uint64_t chain_hops = 0;        // redo-chain entries traversed
  std::uint64_t wait_spins = 0;        // failed predicate checks in waits (all classes)
  std::uint64_t wait_parks = 0;        // futex parks after the spin budget (all classes)

  // Waits split by gate class (sched::gate_class, DESIGN.md §8.6) so the
  // wait governor's per-class behaviour is observable: *_handoff =
  // completion/commit frontier waits, *_inbox = waiting-for-work (slot
  // installs, session inbox, driver completion parks), *_rollback =
  // restart-fence parking and window admission, *_stripe = foreign-stripe
  // release waits on the gate table, *_cm = polite-CM victim waits. The
  // aggregate wait_spins/wait_parks above include these.
  std::uint64_t wait_spins_handoff = 0;
  std::uint64_t wait_parks_handoff = 0;
  std::uint64_t wait_spins_inbox = 0;
  std::uint64_t wait_parks_inbox = 0;
  std::uint64_t wait_spins_rollback = 0;
  std::uint64_t wait_parks_rollback = 0;
  std::uint64_t wait_spins_stripe = 0;
  std::uint64_t wait_parks_stripe = 0;
  std::uint64_t wait_spins_cm = 0;
  std::uint64_t wait_parks_cm = 0;

  // Workload-reported operations (count_ops); committed work only — the
  // harness falls back to committed_tx * ops_per_tx when this stays 0.
  std::uint64_t user_ops = 0;

  // Session front-end drivers (DESIGN.md §8.5).
  std::uint64_t session_batches = 0;         // inbox cells drained by drivers
  std::uint64_t session_batch_txs = 0;       // transactions those cells carried
  std::uint64_t session_callbacks = 0;       // ticket::then callbacks run
  std::uint64_t session_callback_errors = 0; // callbacks that threw (rethrown by wait)
  std::uint64_t latency_samples = 0;         // fully stamped tickets (DESIGN.md §9)

  // Read-only fast path (DESIGN.md §10), counted by the executing driver.
  std::uint64_t readpath_hits = 0;       // read-only txns served at the frontier
  std::uint64_t readpath_retries = 0;    // snapshot attempts retried on conflict
  std::uint64_t readpath_fallbacks = 0;  // read-only txns sent down the full path

  // Adaptive speculation (DESIGN.md §5a).
  std::uint64_t window_shrinks = 0;  // controller narrowed the window
  std::uint64_t window_grows = 0;    // controller widened the window
  std::uint64_t tasks_deferred = 0;  // ready tasks held outside the window
  std::uint64_t window_stalls = 0;   // charged submit-side window stalls
  std::uint64_t drain_stalls = 0;    // charged drain-side stalls

  // Elastic pipeline topology (DESIGN.md §11).
  std::uint64_t topo_grows = 0;        // controller widened the pipeline set
  std::uint64_t topo_shrinks = 0;      // controller narrowed it
  std::uint64_t topo_fence_waits = 0;  // keyed pushes parked on a resize fence
  std::uint64_t topo_reroutes = 0;     // pushes bounced off a closed inbox
  std::uint64_t gate_shard_parks = 0;  // futex parks across gate-table shards

  // Bounded-memory server mode (DESIGN.md §12): reclamation observability.
  std::uint64_t journal_chunks_live = 0;      // journal chunks currently held
  std::uint64_t journal_chunks_pruned = 0;    // journal chunks retired below the frontier
  std::uint64_t writelog_chunks_recycled = 0; // write-log chunks reissued after grace
  std::uint64_t pool_bytes_trimmed = 0;       // bytes returned to the OS by trim passes

  void accumulate(const stat_block& other) noexcept;
  std::uint64_t aborts_total() const noexcept {
    return abort_war + abort_waw_past_running + abort_waw_signalled + abort_cm +
           abort_validation + abort_tx_inter + abort_fence;
  }
};

/// Pretty one-block-per-line dump for harness logs.
std::string to_string(const stat_block& s);
std::ostream& operator<<(std::ostream& os, const stat_block& s);

}  // namespace tlstm::util
