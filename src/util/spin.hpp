// Bounded exponential backoff for the runtime's predicate waits.
//
// Every wait in TLSTM is a predicate loop with abort-flag checks (CP.42:
// don't wait without a condition). On the oversubscribed single-core hosts
// this repo targets, pure spinning would starve the thread that must make
// the predicate true, so the backoff yields to the scheduler early.
#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace tlstm::util {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

/// Exponential pause-then-yield backoff. `spin()` is called once per failed
/// predicate check.
class backoff {
 public:
  void spin() noexcept {
    if (iter_ < spin_limit) {
      for (std::uint32_t i = 0; i < (1u << iter_); ++i) cpu_relax();
      ++iter_;
    } else {
      std::this_thread::yield();
    }
  }
  void reset() noexcept { iter_ = 0; }

 private:
  static constexpr std::uint32_t spin_limit = 4;  // up to 16 pauses, then yield
  std::uint32_t iter_ = 0;
};

}  // namespace tlstm::util
