#include "util/epoch.hpp"

#include <stdexcept>

namespace tlstm::util {

std::size_t epoch_domain::register_participant() {
  std::lock_guard<std::mutex> lock(register_mu_);
  for (std::size_t i = 0; i < max_participants; ++i) {
    bool expected = false;
    if (used_[i].compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
      slots_[i].value.store(unpinned, std::memory_order_release);
      std::size_t hw = high_water_.load(std::memory_order_relaxed);
      while (hw < i + 1 &&
             !high_water_.compare_exchange_weak(hw, i + 1, std::memory_order_relaxed)) {
      }
      return i;
    }
  }
  throw std::runtime_error("epoch_domain: participant slots exhausted");
}

void epoch_domain::unregister_participant(std::size_t idx) noexcept {
  slots_[idx].value.store(unpinned, std::memory_order_release);
  used_[idx].store(false, std::memory_order_release);
}

std::uint64_t epoch_domain::try_advance() noexcept {
  const std::uint64_t cur = global_.load(std::memory_order_acquire);
  const std::size_t hw = high_water_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < hw; ++i) {
    if (!used_[i].load(std::memory_order_acquire)) continue;
    const std::uint64_t pinned_at = slots_[i].value.load(std::memory_order_seq_cst);
    if (pinned_at != unpinned && pinned_at < cur) {
      return cur;  // a straggler still observes an older epoch
    }
  }
  std::uint64_t expected = cur;
  global_.compare_exchange_strong(expected, cur + 1, std::memory_order_acq_rel);
  return global_.load(std::memory_order_acquire);
}

std::uint64_t epoch_domain::safe_before() const noexcept {
  std::uint64_t min_pinned = global_.load(std::memory_order_acquire);
  const std::size_t hw = high_water_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < hw; ++i) {
    if (!used_[i].load(std::memory_order_acquire)) continue;
    const std::uint64_t pinned_at = slots_[i].value.load(std::memory_order_seq_cst);
    if (pinned_at != unpinned && pinned_at < min_pinned) min_pinned = pinned_at;
  }
  return min_pinned;
}

std::size_t reclaimer::collect() {
  const std::uint64_t safe = dom_->safe_before();
  std::size_t freed = 0;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < limbo_.size(); ++i) {
    if (limbo_[i].epoch < safe) {
      limbo_[i].fn(limbo_[i].obj, limbo_[i].ctx);
      ++freed;
    } else {
      limbo_[keep++] = limbo_[i];
    }
  }
  limbo_.resize(keep);
  return freed;
}

std::size_t reclaimer::flush_all() {
  const std::size_t n = limbo_.size();
  for (auto& it : limbo_) it.fn(it.obj, it.ctx);
  limbo_.clear();
  return n;
}

}  // namespace tlstm::util
