// chunked_vector: append-only storage with *stable element addresses*.
//
// The STM write log needs stable addresses because the global lock table
// stores raw pointers to write-log entries (the redo-log chain); a
// std::vector would invalidate those pointers on growth. Chunks are never
// freed while the owning descriptor lives, so concurrent speculative readers
// chasing chain pointers can never touch unmapped memory (entries may be
// logically stale, which validation detects — see DESIGN.md §4.4).
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace tlstm::util {

template <typename T, std::size_t ChunkSize = 64>
class chunked_vector {
  static_assert(ChunkSize > 0 && (ChunkSize & (ChunkSize - 1)) == 0,
                "ChunkSize must be a power of two");

 public:
  static constexpr std::size_t chunk_size = ChunkSize;

  chunked_vector() = default;
  chunked_vector(const chunked_vector&) = delete;
  chunked_vector& operator=(const chunked_vector&) = delete;
  // Move-constructible so a dying owner can donate its chunks to a
  // longer-lived keeper (swiss_runtime::retire_write_log) instead of
  // unmapping them under concurrent stale readers. The source is left
  // genuinely empty (size_ reset, not just chunks stolen). No move
  // assignment: overwriting a live log would free the target's chunks —
  // exactly the unmapping this type exists to prevent.
  chunked_vector(chunked_vector&& other) noexcept
      : chunks_(std::move(other.chunks_)),
        size_(std::exchange(other.size_, 0)),
        base_chunk_(std::exchange(other.base_chunk_, 0)) {}
  chunked_vector& operator=(chunked_vector&&) = delete;

  /// Appends a default-constructed element and returns a stable reference.
  T& emplace_back() {
    const std::size_t chunk = size_ / ChunkSize - base_chunk_;
    const std::size_t slot = size_ & (ChunkSize - 1);
    if (chunk == chunks_.size()) {
      chunks_.push_back(std::make_unique<T[]>(ChunkSize));
    }
    ++size_;
    return chunks_[chunk][slot];
  }

  /// Value appends — only a fresh chunk is ever allocated; existing elements
  /// are never moved (unlike std::vector::push_back, whose regrow copies the
  /// whole array — intolerable inside stamped critical sections, see
  /// thread_state::journal).
  void push_back(const T& v) { emplace_back() = v; }
  void push_back(T&& v) { emplace_back() = std::move(v); }

  T& operator[](std::size_t i) noexcept {
    return chunks_[i / ChunkSize - base_chunk_][i & (ChunkSize - 1)];
  }
  const T& operator[](std::size_t i) const noexcept {
    return chunks_[i / ChunkSize - base_chunk_][i & (ChunkSize - 1)];
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == first_index(); }

  /// Smallest index still backed by a live chunk. 0 until release_before()
  /// has retired a prefix; indices below it must never be dereferenced.
  std::size_t first_index() const noexcept { return base_chunk_ * ChunkSize; }

  /// Frees every whole chunk strictly below element index `keep_from`,
  /// keeping addresses of all retained elements stable (chunks are dropped,
  /// never moved). Partial chunks are kept. Returns the number of chunks
  /// released. Callers own the grace protocol: no reader may still demand an
  /// index below keep_from (thread_state::prune_journal holds journal_mu
  /// against snapshot readers).
  std::size_t release_before(std::size_t keep_from) {
    const std::size_t target = std::min(keep_from, size_) / ChunkSize;
    if (target <= base_chunk_) return 0;
    const std::size_t drop = target - base_chunk_;
    chunks_.erase(chunks_.begin(),
                  chunks_.begin() + static_cast<std::ptrdiff_t>(drop));
    base_chunk_ = target;
    return drop;
  }

  /// Number of chunks currently allocated (retained suffix only).
  std::size_t chunks_live() const noexcept { return chunks_.size(); }

  /// Logical clear. Chunk memory is retained so that (a) re-use is
  /// allocation-free and (b) stale chain pointers held by concurrent readers
  /// remain dereferenceable (type-stability).
  void clear() noexcept {
    size_ = 0;
    base_chunk_ = 0;
  }

  /// Strips every chunk for reuse elsewhere (write-log recycling): the
  /// harvested storage is handed to adopt_chunk() on another instance once a
  /// grace period rules out stale readers. Leaves *this genuinely empty.
  std::vector<std::unique_ptr<T[]>> harvest_chunks() noexcept {
    size_ = 0;
    base_chunk_ = 0;
    return std::move(chunks_);
  }

  /// Installs a previously harvested chunk as spare capacity at the tail;
  /// emplace_back will grow into it before allocating. The chunk's contents
  /// are stale garbage until overwritten — callers pass only chunks that
  /// cleared a grace period, so no reader still chases pointers into them.
  void adopt_chunk(std::unique_ptr<T[]> chunk) {
    chunks_.push_back(std::move(chunk));
  }

  /// Logical removal of the newest element (used when a lock CAS loses the
  /// race and the speculatively appended entry must be withdrawn).
  void pop_back() noexcept { --size_; }

  T& back() noexcept { return (*this)[size_ - 1]; }

  /// Iteration support (forward only, sufficient for log walks).
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::size_t i = 0; i < size_; ++i) fn((*this)[i]);
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < size_; ++i) fn((*this)[i]);
  }
  /// Reverse iteration (newest first) — used when popping redo-chain entries.
  template <typename Fn>
  void for_each_reverse(Fn&& fn) {
    for (std::size_t i = size_; i > 0; --i) fn((*this)[i - 1]);
  }

 private:
  std::vector<std::unique_ptr<T[]>> chunks_;
  std::size_t size_ = 0;
  /// Chunks released below the retain frontier (release_before); chunks_[0]
  /// holds indices [base_chunk_ * ChunkSize, ...).
  std::size_t base_chunk_ = 0;
};

}  // namespace tlstm::util
